//! OWL 2 frontend: a functional-syntax reader for the DL-Lite/ELHI⊥
//! overlap that lowers onto the existing [`gtgd_chase::dl`] axiom
//! encodings (and from there onto guarded TGDs via
//! [`gtgd_chase::try_tbox_to_tgds`]).
//!
//! Supported: `Prefix`, `Ontology`, `Declaration` (classes / object
//! properties / individuals), `SubClassOf`, `EquivalentClasses`,
//! `DisjointClasses`, `SubObjectPropertyOf`, `InverseObjectProperties`,
//! `SymmetricObjectProperty`, `ObjectPropertyDomain`/`Range`, class
//! expressions built from named classes, `owl:Thing`/`owl:Nothing`,
//! `ObjectIntersectionOf` and `ObjectSomeValuesFrom`, plus ABox
//! `ClassAssertion` / `ObjectPropertyAssertion` facts.
//!
//! Everything OWL 2 allows beyond that fragment — unions, negation,
//! universal restrictions, cardinalities, nominals, transitivity,
//! functionality, data properties — is rejected with a line-precise
//! [`IngestError::Fragment`] naming the construct and why it falls
//! outside guarded-TGD reasoning. Precise rejection is the point: the
//! paper's tractability results are *for* the guarded fragment, and a
//! silent approximation would change the semantics of every answer.

use crate::error::IngestError;
use crate::rdf::RdfSource;
use crate::source::{FactSink, Source, SourceSchema};
use gtgd_chase::{try_tbox_to_tgds, Axiom, Concept, Role};
use gtgd_data::{GroundAtom, Predicate, Schema, Value};
use std::collections::HashMap;

const OWL_NS: &str = "http://www.w3.org/2002/07/owl#";

/// An OWL 2 functional-syntax document (TBox + optional inline ABox),
/// optionally paired with an RDF data file as the ABox.
pub struct OwlSource {
    name: String,
    text: String,
    abox: Option<RdfSource>,
    parsed: Option<Parsed>,
}

struct Parsed {
    schema: Schema,
    axioms: Vec<(usize, Axiom)>,
    facts: Vec<GroundAtom>,
}

impl OwlSource {
    /// A source over in-memory OWL functional-syntax text.
    pub fn from_str(name: &str, text: &str) -> OwlSource {
        OwlSource {
            name: name.to_string(),
            text: text.to_string(),
            abox: None,
            parsed: None,
        }
    }

    /// A source reading `path` from disk.
    pub fn from_path(path: &std::path::Path) -> Result<OwlSource, IngestError> {
        let text = std::fs::read_to_string(path).map_err(|e| IngestError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Ok(OwlSource {
            name: path.display().to_string(),
            text,
            abox: None,
            parsed: None,
        })
    }

    /// Attaches an RDF document as the ABox; its triples stream after any
    /// inline `ClassAssertion`/`ObjectPropertyAssertion` facts.
    pub fn with_abox(mut self, abox: RdfSource) -> OwlSource {
        self.abox = Some(abox);
        self
    }

    fn ensure_parsed(&mut self) -> Result<&Parsed, IngestError> {
        if self.parsed.is_none() {
            self.parsed = Some(OwlParser::new(&self.text).document()?);
        }
        Ok(self.parsed.as_ref().expect("just parsed"))
    }
}

impl Source for OwlSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn schema(&mut self) -> Result<SourceSchema, IngestError> {
        let parsed = self.ensure_parsed()?;
        let bare: Vec<Axiom> = parsed.axioms.iter().map(|(_, a)| a.clone()).collect();
        let tgds = match try_tbox_to_tgds(&bare) {
            Ok(tgds) => tgds,
            Err(e) => {
                // Locate the offending axiom: fragment errors are local,
                // so the axiom that sank the batch also fails alone.
                let line = parsed
                    .axioms
                    .iter()
                    .find(|(_, a)| try_tbox_to_tgds(std::slice::from_ref(a)).is_err())
                    .map_or(0, |(l, _)| *l);
                return Err(IngestError::Fragment {
                    line,
                    construct: e.axiom,
                    reason: e.reason,
                });
            }
        };
        Ok(SourceSchema {
            schema: parsed.schema.clone(),
            tgds,
        })
    }

    fn facts(&mut self, sink: &mut dyn FactSink) -> Result<(), IngestError> {
        self.ensure_parsed()?;
        for atom in &self.parsed.as_ref().expect("parsed").facts {
            sink.push(atom.clone())?;
        }
        if let Some(abox) = &mut self.abox {
            abox.facts(sink)?;
        }
        Ok(())
    }
}

/// A functional-syntax token.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    LParen,
    RParen,
    Eq,
    /// `<...>` IRI reference.
    Iri(String),
    /// Bare or prefixed name (`SubClassOf`, `ex:Emp`, `ex:`).
    Name(String),
    /// `"..."` quoted literal.
    Literal(String),
}

struct OwlParser<'a> {
    bytes: &'a [u8],
    text: &'a str,
    pos: usize,
    line: usize,
    prefixes: HashMap<String, String>,
}

impl<'a> OwlParser<'a> {
    fn new(text: &'a str) -> OwlParser<'a> {
        let mut prefixes = HashMap::new();
        // Standard namespaces are pre-declared, as every OWL tool does.
        prefixes.insert("owl".to_string(), OWL_NS.to_string());
        prefixes.insert(
            "rdf".to_string(),
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#".to_string(),
        );
        prefixes.insert(
            "rdfs".to_string(),
            "http://www.w3.org/2000/01/rdf-schema#".to_string(),
        );
        prefixes.insert(
            "xsd".to_string(),
            "http://www.w3.org/2001/XMLSchema#".to_string(),
        );
        OwlParser {
            bytes: text.as_bytes(),
            text,
            pos: 0,
            line: 1,
            prefixes,
        }
    }

    fn err(&self, message: impl Into<String>) -> IngestError {
        IngestError::Owl {
            line: self.line,
            message: message.into(),
        }
    }

    fn fragment(&self, construct: &str, reason: &str) -> IngestError {
        IngestError::Fragment {
            line: self.line,
            construct: construct.to_string(),
            reason: reason.to_string(),
        }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek_byte()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek_byte() {
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'#' => {
                    while self.peek_byte().is_some_and(|c| c != b'\n') {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn next_tok(&mut self) -> Result<Option<Tok>, IngestError> {
        self.skip_ws();
        let Some(b) = self.peek_byte() else {
            return Ok(None);
        };
        match b {
            b'(' => {
                self.bump();
                Ok(Some(Tok::LParen))
            }
            b')' => {
                self.bump();
                Ok(Some(Tok::RParen))
            }
            b'=' => {
                self.bump();
                Ok(Some(Tok::Eq))
            }
            b'<' => {
                self.bump();
                let start = self.pos;
                loop {
                    match self.peek_byte() {
                        Some(b'>') => {
                            let iri = self.text[start..self.pos].to_string();
                            self.bump();
                            return Ok(Some(Tok::Iri(iri)));
                        }
                        Some(b'\n') | None => {
                            return Err(self.err("unterminated IRI (missing `>`)"))
                        }
                        Some(_) => {
                            self.bump();
                        }
                    }
                }
            }
            b'"' => {
                self.bump();
                let mut out = String::new();
                loop {
                    match self.bump() {
                        Some(b'"') => return Ok(Some(Tok::Literal(out))),
                        Some(b'\\') => match self.bump() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(c) => {
                                return Err(
                                    self.err(format!("bad escape `\\{}` in literal", c as char))
                                )
                            }
                            None => return Err(self.err("unterminated literal")),
                        },
                        Some(b'\n') | None => return Err(self.err("unterminated literal")),
                        Some(c) => out.push(c as char),
                    }
                }
            }
            b if b.is_ascii_alphanumeric() || b == b'_' => {
                let start = self.pos;
                while self
                    .peek_byte()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':'))
                {
                    self.bump();
                }
                Ok(Some(Tok::Name(self.text[start..self.pos].to_string())))
            }
            other => Err(self.err(format!("unexpected character `{}`", other as char))),
        }
    }

    fn expect(&mut self, want: Tok) -> Result<(), IngestError> {
        match self.next_tok()? {
            Some(t) if t == want => Ok(()),
            Some(t) => Err(self.err(format!("expected {want:?}, found {t:?}"))),
            None => Err(self.err(format!("expected {want:?}, found end of input"))),
        }
    }

    /// Resolves a `Tok::Iri`/`Tok::Name` to a full IRI string.
    fn resolve(&self, tok: &Tok) -> Result<String, IngestError> {
        match tok {
            Tok::Iri(i) => Ok(i.clone()),
            Tok::Name(n) => match n.split_once(':') {
                Some((prefix, local)) => match self.prefixes.get(prefix) {
                    Some(ns) => Ok(format!("{ns}{local}")),
                    None => Err(self.err(format!("unknown prefix `{prefix}:`"))),
                },
                // Bare names resolve to themselves — handy for tests.
                None => Ok(n.clone()),
            },
            t => Err(self.err(format!("expected an entity, found {t:?}"))),
        }
    }

    /// Local-name shortening, matching the RDF frontend.
    fn local(iri: &str) -> String {
        let local = match iri.rfind(['#', '/']) {
            Some(i) => &iri[i + 1..],
            None => iri,
        };
        if local.is_empty() {
            iri.to_string()
        } else {
            local.to_string()
        }
    }

    fn entity_name(&mut self) -> Result<String, IngestError> {
        match self.next_tok()? {
            Some(t) => Ok(Self::local(&self.resolve(&t)?)),
            None => Err(self.err("expected an entity, found end of input")),
        }
    }

    fn document(mut self) -> Result<Parsed, IngestError> {
        let mut parsed = Parsed {
            schema: Schema::new(),
            axioms: Vec::new(),
            facts: Vec::new(),
        };
        let mut depth = 0usize; // open `Ontology(` wrappers
        loop {
            self.skip_ws();
            let line = self.line;
            let tok = match self.next_tok()? {
                Some(t) => t,
                None => {
                    if depth > 0 {
                        return Err(self.err("unclosed Ontology( — missing `)`"));
                    }
                    return Ok(parsed);
                }
            };
            match tok {
                Tok::RParen if depth > 0 => {
                    depth -= 1;
                }
                Tok::Name(ref n) if n == "Prefix" => self.prefix_decl()?,
                Tok::Name(ref n) if n == "Ontology" => {
                    self.expect(Tok::LParen)?;
                    depth += 1;
                    // Optional ontology IRI(s) directly after the paren.
                    loop {
                        let save = (self.pos, self.line);
                        match self.next_tok()? {
                            Some(Tok::Iri(_)) => {}
                            Some(_) | None => {
                                self.pos = save.0;
                                self.line = save.1;
                                break;
                            }
                        }
                    }
                }
                Tok::Name(n) => self.axiom(&n, line, &mut parsed)?,
                t => return Err(self.err(format!("expected an axiom, found {t:?}"))),
            }
        }
    }

    /// `Prefix(ex:=<http://ex.org/>)`
    fn prefix_decl(&mut self) -> Result<(), IngestError> {
        self.expect(Tok::LParen)?;
        let name = match self.next_tok()? {
            Some(Tok::Name(n)) => n,
            t => return Err(self.err(format!("expected a prefix name in Prefix, found {t:?}"))),
        };
        let prefix = match name.strip_suffix(':') {
            Some(p) => p.to_string(),
            None if name.contains(':') => name.split(':').next().unwrap_or("").to_string(),
            None => return Err(self.err(format!("prefix `{name}` must end with `:`"))),
        };
        self.expect(Tok::Eq)?;
        let iri = match self.next_tok()? {
            Some(Tok::Iri(i)) => i,
            t => return Err(self.err(format!("expected <iri> in Prefix, found {t:?}"))),
        };
        self.expect(Tok::RParen)?;
        self.prefixes.insert(prefix, iri);
        Ok(())
    }

    fn axiom(&mut self, head: &str, line: usize, out: &mut Parsed) -> Result<(), IngestError> {
        self.expect(Tok::LParen)?;
        match head {
            "Declaration" => self.declaration(out)?,
            "SubClassOf" => {
                let sub = self.concept()?;
                let sup = self.concept()?;
                out.axioms.push((line, Axiom::ConceptInclusion(sub, sup)));
            }
            "EquivalentClasses" => {
                let a = self.concept()?;
                let b = self.concept()?;
                out.axioms
                    .push((line, Axiom::ConceptInclusion(a.clone(), b.clone())));
                out.axioms.push((line, Axiom::ConceptInclusion(b, a)));
            }
            "DisjointClasses" => {
                let a = self.concept()?;
                let b = self.concept()?;
                out.axioms.push((
                    line,
                    Axiom::ConceptInclusion(
                        Concept::And(Box::new(a), Box::new(b)),
                        Concept::Bottom,
                    ),
                ));
            }
            "SubObjectPropertyOf" => {
                let r = self.role()?;
                let s = self.role()?;
                out.axioms.push((line, Axiom::RoleInclusion(r, s)));
            }
            "InverseObjectProperties" => {
                let r = self.role()?;
                let s = self.role()?;
                let inv = |role: &Role| Role {
                    name: role.name.clone(),
                    inverse: !role.inverse,
                };
                out.axioms
                    .push((line, Axiom::RoleInclusion(r.clone(), inv(&s))));
                out.axioms.push((line, Axiom::RoleInclusion(s, inv(&r))));
            }
            "SymmetricObjectProperty" => {
                let r = self.role()?;
                let inv = Role {
                    name: r.name.clone(),
                    inverse: !r.inverse,
                };
                out.axioms.push((line, Axiom::RoleInclusion(r, inv)));
            }
            "ObjectPropertyDomain" => {
                let r = self.role()?;
                let c = self.concept()?;
                out.axioms.push((
                    line,
                    Axiom::ConceptInclusion(Concept::Exists(r, Box::new(Concept::Top)), c),
                ));
            }
            "ObjectPropertyRange" => {
                let r = self.role()?;
                let c = self.concept()?;
                let inv = Role {
                    name: r.name,
                    inverse: !r.inverse,
                };
                out.axioms.push((
                    line,
                    Axiom::ConceptInclusion(Concept::Exists(inv, Box::new(Concept::Top)), c),
                ));
            }
            "ClassAssertion" => {
                let c = self.concept()?;
                let ind = self.entity_name()?;
                match c {
                    Concept::Atomic(name) => out.facts.push(GroundAtom {
                        predicate: Predicate::new(&name),
                        args: vec![Value::named(&ind)],
                    }),
                    other => {
                        return Err(self.fragment(
                            "ClassAssertion",
                            &format!(
                                "ABox assertions must use a named class, not {other:?}; \
                                 assert the named class and let the TBox entail the rest"
                            ),
                        ))
                    }
                }
            }
            "ObjectPropertyAssertion" => {
                let r = self.role()?;
                let a = self.entity_name()?;
                let b = self.entity_name()?;
                let (s, o) = if r.inverse { (b, a) } else { (a, b) };
                out.facts.push(GroundAtom {
                    predicate: Predicate::new(&r.name),
                    args: vec![Value::named(&s), Value::named(&o)],
                });
            }
            "AnnotationAssertion" => {
                // Annotations carry no semantics here; skip the balanced body.
                self.skip_balanced(1)?;
                return Ok(());
            }
            // Known OWL 2 constructs that cannot be guarded TGDs.
            "TransitiveObjectProperty" => {
                return Err(self.fragment(
                    head,
                    "transitivity r(x,y) ∧ r(y,z) → r(x,z) has no guard atom covering \
                     all three variables",
                ))
            }
            "FunctionalObjectProperty" | "InverseFunctionalObjectProperty" | "HasKey" => {
                return Err(self.fragment(
                    head,
                    "functionality/keys are EGDs, not TGDs; declare keys in the CSV \
                     manifest frontend instead",
                ))
            }
            "ReflexiveObjectProperty" | "IrreflexiveObjectProperty"
            | "AsymmetricObjectProperty" => {
                return Err(self.fragment(head, "(ir)reflexivity and asymmetry are outside ELHI⊥"))
            }
            "DisjointObjectProperties" => {
                return Err(self.fragment(head, "property disjointness is outside ELHI⊥"))
            }
            "SubDataPropertyOf" | "DataPropertyDomain" | "DataPropertyRange"
            | "DataPropertyAssertion" | "FunctionalDataProperty" => {
                return Err(self.fragment(
                    head,
                    "data properties are not modeled; only object properties lower to \
                     binary predicates",
                ))
            }
            "SameIndividual" | "DifferentIndividuals" => {
                return Err(self.fragment(
                    head,
                    "individual (in)equality needs equality reasoning outside the TGD fragment",
                ))
            }
            other => return Err(self.err(format!("unsupported axiom `{other}`"))),
        }
        self.expect(Tok::RParen)?;
        Ok(())
    }

    /// `Declaration(Class(ex:C))` etc. — records arities in the schema.
    fn declaration(&mut self, out: &mut Parsed) -> Result<(), IngestError> {
        let kind = match self.next_tok()? {
            Some(Tok::Name(n)) => n,
            t => return Err(self.err(format!("expected an entity kind, found {t:?}"))),
        };
        self.expect(Tok::LParen)?;
        let name = self.entity_name()?;
        self.expect(Tok::RParen)?;
        match kind.as_str() {
            "Class" => {
                out.schema.add(Predicate::new(&name), 1);
            }
            "ObjectProperty" => {
                out.schema.add(Predicate::new(&name), 2);
            }
            "NamedIndividual" => {}
            "DataProperty" | "Datatype" => {
                return Err(self.fragment(
                    &format!("Declaration({kind})"),
                    "data properties/datatypes are not modeled",
                ))
            }
            "AnnotationProperty" => {}
            other => return Err(self.err(format!("unsupported declaration kind `{other}`"))),
        }
        Ok(())
    }

    fn concept(&mut self) -> Result<Concept, IngestError> {
        let tok = match self.next_tok()? {
            Some(t) => t,
            None => return Err(self.err("expected a class expression, found end of input")),
        };
        let name = match &tok {
            Tok::Name(n) => n.clone(),
            Tok::Iri(_) => {
                let iri = self.resolve(&tok)?;
                return Ok(self.named_concept(&iri));
            }
            t => return Err(self.err(format!("expected a class expression, found {t:?}"))),
        };
        // Constructor or named class? Peek for `(`.
        let save = (self.pos, self.line);
        let is_ctor = matches!(self.next_tok()?, Some(Tok::LParen));
        if !is_ctor {
            self.pos = save.0;
            self.line = save.1;
            let iri = self.resolve(&Tok::Name(name))?;
            return Ok(self.named_concept(&iri));
        }
        match name.as_str() {
            "ObjectIntersectionOf" => {
                let mut parts = vec![self.concept()?, self.concept()?];
                loop {
                    let save = (self.pos, self.line);
                    match self.next_tok()? {
                        Some(Tok::RParen) => break,
                        Some(_) => {
                            self.pos = save.0;
                            self.line = save.1;
                            parts.push(self.concept()?);
                        }
                        None => return Err(self.err("unclosed ObjectIntersectionOf")),
                    }
                }
                let mut it = parts.into_iter();
                let first = it.next().expect("two parts parsed");
                Ok(it.fold(first, |acc, c| Concept::And(Box::new(acc), Box::new(c))))
            }
            "ObjectSomeValuesFrom" => {
                let r = self.role()?;
                let c = self.concept()?;
                self.expect(Tok::RParen)?;
                Ok(Concept::Exists(r, Box::new(c)))
            }
            "ObjectUnionOf" => Err(self.fragment(
                "ObjectUnionOf",
                "disjunction is outside ELHI⊥ (only conjunction and existentials lower \
                 to guarded TGDs)",
            )),
            "ObjectComplementOf" => {
                Err(self.fragment("ObjectComplementOf", "negation is outside ELHI⊥"))
            }
            "ObjectAllValuesFrom" => Err(self.fragment(
                "ObjectAllValuesFrom",
                "universal restrictions are outside ELHI⊥",
            )),
            "ObjectMinCardinality" | "ObjectMaxCardinality" | "ObjectExactCardinality" => {
                Err(self.fragment(
                    &name,
                    "cardinality restrictions need counting/equality outside the TGD fragment",
                ))
            }
            "ObjectOneOf" | "ObjectHasValue" => {
                Err(self.fragment(&name, "nominals are outside ELHI⊥"))
            }
            "ObjectHasSelf" => Err(self.fragment("ObjectHasSelf", "self-loops are outside ELHI⊥")),
            "DataSomeValuesFrom" | "DataAllValuesFrom" | "DataHasValue" => Err(self.fragment(
                &name,
                "data ranges are not modeled; only object properties lower to binary predicates",
            )),
            other => Err(self.err(format!("unsupported class expression `{other}`"))),
        }
    }

    fn named_concept(&self, iri: &str) -> Concept {
        if iri == format!("{OWL_NS}Thing") {
            Concept::Top
        } else if iri == format!("{OWL_NS}Nothing") {
            Concept::Bottom
        } else {
            Concept::Atomic(Self::local(iri))
        }
    }

    fn role(&mut self) -> Result<Role, IngestError> {
        let tok = match self.next_tok()? {
            Some(t) => t,
            None => return Err(self.err("expected an object property, found end of input")),
        };
        if let Tok::Name(n) = &tok {
            if n == "ObjectInverseOf" {
                self.expect(Tok::LParen)?;
                let inner = self.role()?;
                self.expect(Tok::RParen)?;
                return Ok(Role {
                    name: inner.name,
                    inverse: !inner.inverse,
                });
            }
        }
        let iri = self.resolve(&tok)?;
        Ok(Role {
            name: Self::local(&iri),
            inverse: false,
        })
    }

    /// Skips tokens until `depth` open parens are closed, consuming the
    /// final `)` — callers must not also expect it.
    fn skip_balanced(&mut self, mut depth: usize) -> Result<(), IngestError> {
        while depth > 0 {
            match self.next_tok()? {
                Some(Tok::LParen) => depth += 1,
                Some(Tok::RParen) => depth -= 1,
                Some(_) => {}
                None => return Err(self.err("unexpected end of input inside axiom")),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ingest;
    use gtgd_chase::ChaseBudget;

    const UNI: &str = r#"
        Prefix(ex:=<http://ex.org/uni#>)
        Ontology(<http://ex.org/uni>
          Declaration(Class(ex:Professor))
          Declaration(Class(ex:Faculty))
          Declaration(Class(ex:Department))
          Declaration(ObjectProperty(ex:worksFor))
          SubClassOf(ex:Professor ex:Faculty)
          SubClassOf(ex:Professor ObjectSomeValuesFrom(ex:worksFor ex:Department))
          ObjectPropertyRange(ex:worksFor ex:Department)
          ClassAssertion(ex:Professor ex:ann)
        )
    "#;

    #[test]
    fn tbox_lowers_and_abox_chases() {
        let mut src = OwlSource::from_str("uni", UNI);
        let p = ingest(&mut src).unwrap();
        assert_eq!(p.facts.len(), 1);
        assert_eq!(p.schema.arity(Predicate::new("worksFor")), Some(2));
        let out = p.chase(ChaseBudget::unbounded());
        assert!(out.complete);
        let preds: Vec<String> = out.instance.iter().map(|a| a.predicate.to_string()).collect();
        assert!(preds.iter().any(|s| s == "Faculty"), "{preds:?}");
        assert!(preds.iter().any(|s| s == "worksFor"), "{preds:?}");
        assert!(preds.iter().any(|s| s == "Department"), "{preds:?}");
    }

    #[test]
    fn out_of_fragment_constructs_are_precise_rejections() {
        for (axiom, needle) in [
            (
                "SubClassOf(ex:A ObjectUnionOf(ex:B ex:C))",
                "disjunction is outside",
            ),
            (
                "SubClassOf(ex:A ObjectAllValuesFrom(ex:r ex:B))",
                "universal restrictions",
            ),
            (
                "SubClassOf(ex:A ObjectMinCardinality(2 ex:r))",
                "cardinality",
            ),
            ("TransitiveObjectProperty(ex:r)", "no guard atom"),
            ("FunctionalObjectProperty(ex:r)", "EGDs, not TGDs"),
            ("SubClassOf(ex:A ObjectComplementOf(ex:B))", "negation"),
            ("DataPropertyAssertion(ex:age ex:a \"4\")", "data properties"),
        ] {
            let text = format!("Prefix(ex:=<http://e/>)\n{axiom}\n");
            let e = ingest(&mut OwlSource::from_str("t", &text)).unwrap_err();
            assert!(
                matches!(e, IngestError::Fragment { line: 2, .. }),
                "{axiom}: {e}"
            );
            assert!(e.to_string().contains(needle), "{axiom}: {e}");
        }
    }

    #[test]
    fn top_on_lhs_is_rejected_at_lowering_with_line() {
        let text = "Prefix(ex:=<http://e/>)\nSubClassOf(ex:A ex:B)\nSubClassOf(owl:Thing ex:C)\n";
        let e = ingest(&mut OwlSource::from_str("t", text)).unwrap_err();
        match &e {
            IngestError::Fragment { line, reason, .. } => {
                assert_eq!(*line, 3, "{e}");
                assert!(reason.contains("⊤ on the left-hand side"), "{e}");
            }
            other => panic!("expected Fragment, got {other}"),
        }
    }

    #[test]
    fn malformed_syntax_is_owl_error() {
        for text in [
            "SubClassOf(ex:A",                     // unclosed
            "Prefix(ex=<http://e/>)",              // missing colon
            "Frobnicate(ex:A ex:B)",               // unknown axiom
            "SubClassOf(ex:A ex:B) extra",         // trailing garbage -> unknown axiom `extra`
        ] {
            let e = ingest(&mut OwlSource::from_str("t", text)).unwrap_err();
            assert!(
                matches!(e, IngestError::Owl { .. } | IngestError::Fragment { .. }),
                "{text}: {e}"
            );
        }
    }

    #[test]
    fn inverse_and_domain_range_lower() {
        let text = "Prefix(ex:=<http://e/>)\n\
                    InverseObjectProperties(ex:teaches ex:taughtBy)\n\
                    ObjectPropertyDomain(ex:teaches ex:Teacher)\n\
                    ObjectPropertyAssertion(ex:taughtBy ex:cs101 ex:ann)\n";
        let p = ingest(&mut OwlSource::from_str("t", text)).unwrap();
        let out = p.chase(ChaseBudget::unbounded());
        let have: Vec<String> = out.instance.iter().map(|a| a.to_string()).collect();
        assert!(have.iter().any(|s| s == "teaches(ann,cs101)"), "{have:?}");
        assert!(have.iter().any(|s| s == "Teacher(ann)"), "{have:?}");
    }

    #[test]
    fn rdf_abox_streams_through_owl_schema() {
        let abox = RdfSource::from_str(
            "abox",
            "@prefix ex: <http://ex.org/uni#> .\nex:bob a ex:Professor .",
        );
        let mut src = OwlSource::from_str("uni", UNI).with_abox(abox);
        let p = ingest(&mut src).unwrap();
        assert_eq!(p.facts.len(), 2); // ann + bob
    }
}
