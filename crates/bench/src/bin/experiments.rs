//! Regenerates the experiment tables (DESIGN.md §4 / EXPERIMENTS.md).
//!
//! Usage:
//! ```text
//! experiments                    # run everything
//! experiments E4 E6              # run selected experiments
//! experiments --json out.json E1
//! experiments --jobs 4           # run independent series concurrently
//! experiments --kernel-json BENCH_kernel.json   # kernel before/after only
//! experiments --wcoj-json BENCH_wcoj.json       # WCOJ vs backtracker only
//! experiments --serve-json BENCH_serve.json     # snapshot + serve amortization only
//! experiments --ingest-json BENCH_ingest.json   # E18 ingestion-at-scale sweep (to ~10^6 atoms)
//! experiments --ingest-smoke                    # E18 small scales with an enforced time bar
//! experiments --trace-json TRACE.json           # traced E9/E10/E15 probe reports
//! experiments --obs-smoke                       # disabled-probe overhead check
//! experiments --certify-sample                  # emit + independently check certificates
//! experiments --cert-smoke                      # disabled-provenance overhead check
//! ```
//!
//! With `--jobs N`, independent experiment series run on an N-worker pool;
//! tables are still printed in request order. Timings measured under
//! `--jobs > 1` are noisier (series share cores), so published numbers
//! should come from a sequential run — the flag exists to make full-suite
//! regeneration fast on developer machines.

use gtgd_bench::{
    ingest_benchmark, ingest_json, ingest_smoke, kernel_benchmark, kernel_json, run_experiment,
    serve_benchmark, serve_json, tables_to_json, trace_all, trace_json, wcoj_benchmark, wcoj_json,
    ExperimentTable, IngestMetric,
};
use gtgd_data::Pool;
use std::io::Write;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut kernel_path: Option<String> = None;
    let mut wcoj_path: Option<String> = None;
    let mut serve_path: Option<String> = None;
    let mut ingest_path: Option<String> = None;
    let mut do_ingest_smoke = false;
    let mut trace_path: Option<String> = None;
    let mut obs_smoke = false;
    let mut certify_sample = false;
    let mut cert_smoke = false;
    let mut jobs = 1usize;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                json_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--kernel-json" => {
                kernel_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--wcoj-json" => {
                wcoj_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--serve-json" => {
                serve_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--ingest-json" => {
                ingest_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--ingest-smoke" => {
                do_ingest_smoke = true;
                i += 1;
            }
            "--trace-json" => {
                trace_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--obs-smoke" => {
                obs_smoke = true;
                i += 1;
            }
            "--certify-sample" => {
                certify_sample = true;
                i += 1;
            }
            "--cert-smoke" => {
                cert_smoke = true;
                i += 1;
            }
            "--jobs" => {
                jobs = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--jobs expects a positive integer");
                        std::process::exit(2);
                    });
                i += 2;
            }
            other => {
                ids.push(other.to_string());
                i += 1;
            }
        }
    }
    if let Some(path) = trace_path {
        // Trace mode: re-run small slices of E9/E10/E15 through the facades
        // with probes enabled and emit the RunReport tree; skips the suite.
        let traced = trace_all();
        for t in &traced {
            println!("{:>4}  {}", t.id, t.title);
            for c in &t.report.counters {
                println!("      {:<24} {:>12}", c.name, c.value);
            }
        }
        let mut f = std::fs::File::create(&path).expect("create trace json output");
        f.write_all(trace_json(&traced).as_bytes())
            .expect("write trace json");
        eprintln!("wrote {path}");
        return;
    }
    if obs_smoke {
        // Overhead smoke: with the probe gate off (the default), the facade
        // must not be measurably slower than the legacy free function on an
        // E15-style chase — both route through the same probed engine, so
        // this catches any accidental always-on instrumentation.
        run_obs_smoke();
        return;
    }
    if certify_sample {
        // Certificate sample: run certified chases over the E9-style org
        // and E15-style transitive-closure workloads, certify every
        // null-free answer with both join strategies, and pipe the JSON
        // through the *independent* gtgd-check library; skips the suite.
        run_certify_sample();
        return;
    }
    if cert_smoke {
        // Overhead smoke for the provenance gate: with no certificate
        // collector installed, the chase must cost what it cost before the
        // probe existed (plus an informational capture-on ratio).
        run_cert_smoke();
        return;
    }
    if let Some(path) = kernel_path {
        // Kernel mode: run only the kernel-relevant series (E2/E9/E12/E15)
        // and emit the before/after report; skips the full suite.
        let metrics = kernel_benchmark();
        for m in &metrics {
            println!(
                "{:>4} {:<18} n={:<4} before {:>9.3} ms  after {:>9.3} ms  speedup {:>6.2}x",
                m.experiment,
                m.metric,
                m.n,
                m.before_ms,
                m.after_ms,
                m.speedup()
            );
        }
        let mut f = std::fs::File::create(&path).expect("create kernel json output");
        f.write_all(kernel_json(&metrics).as_bytes())
            .expect("write kernel json");
        eprintln!("wrote {path}");
        return;
    }
    if let Some(path) = wcoj_path {
        // WCOJ mode: measure the leapfrog executor against the forced
        // backtracker live on the cyclic-shape workloads; skips the suite.
        let metrics = wcoj_benchmark();
        for m in &metrics {
            println!(
                "{:<38} backtrack {:>9.3} ms  wcoj {:>9.3} ms  dense {:>9.3} ms  \
                 speedup {:>6.2}x  dense-speedup {:>5.2}x  planner {:<9} agree {}",
                m.workload,
                m.backtrack_ms,
                m.wcoj_ms,
                m.dense_ms,
                m.speedup(),
                m.dense_speedup(),
                m.planner,
                m.answers_agree
            );
            if !m.scaling.is_empty() {
                let row: Vec<String> = m
                    .scaling
                    .iter()
                    .map(|&(w, ms)| match ms {
                        Some(ms) => format!("w={w} {ms:.3} ms"),
                        None => format!("w={w} skipped (single-core)"),
                    })
                    .collect();
                println!("{:<38} morsel scaling: {}", "", row.join("  "));
            }
        }
        let mut f = std::fs::File::create(&path).expect("create wcoj json output");
        f.write_all(wcoj_json(&metrics).as_bytes())
            .expect("write wcoj json");
        eprintln!("wrote {path}");
        return;
    }
    if let Some(path) = serve_path {
        // Serve mode: measure snapshot load vs re-chase and warm daemon
        // queries vs cold process runs; skips the suite.
        let metrics = serve_benchmark();
        for m in &metrics {
            println!(
                "{:<10} atoms {:>6}  cold {:>9.3} ms ({})  warm {:>7.3} ms  \
                 cold/warm {:>7.0}x  re-chase {:>9.3} ms  load {:>7.3} ms  \
                 load-speedup {:>5.0}x  agree {}",
                m.workload,
                m.atoms,
                m.cold_ms,
                m.cold_source,
                m.warm_query_ms,
                m.cold_over_warm(),
                m.rechase_ms,
                m.load_ms,
                m.load_speedup(),
                m.answers_agree
            );
        }
        let mut f = std::fs::File::create(&path).expect("create serve json output");
        f.write_all(serve_json(&metrics).as_bytes())
            .expect("write serve json");
        eprintln!("wrote {path}");
        return;
    }
    if let Some(path) = ingest_path {
        // Ingest mode: run the full E18 sweep (~10^3 to ~10^6 base atoms
        // through the Source pipeline) and emit BENCH_ingest.json; skips
        // the suite. The top scale takes minutes — that is the point.
        let metrics = ingest_benchmark();
        print_ingest_rows(&metrics);
        let mut f = std::fs::File::create(&path).expect("create ingest json output");
        f.write_all(ingest_json(&metrics).as_bytes())
            .expect("write ingest json");
        eprintln!("wrote {path}");
        return;
    }
    if do_ingest_smoke {
        run_ingest_smoke();
        return;
    }
    if ids.is_empty() {
        ids = (1..=15).map(|i| format!("E{i}")).collect();
    }
    let results: Vec<Option<ExperimentTable>> =
        Pool::with_workers(jobs).map(&ids, |id| run_experiment(id));
    let mut tables: Vec<ExperimentTable> = Vec::new();
    for (id, result) in ids.iter().zip(results) {
        match result {
            Some(t) => {
                println!("{}", t.render());
                tables.push(t);
            }
            None => eprintln!("unknown experiment id: {id}"),
        }
    }
    if let Some(path) = json_path {
        let mut f = std::fs::File::create(&path).expect("create json output");
        f.write_all(tables_to_json(&tables).as_bytes())
            .expect("write json");
        eprintln!("wrote {path}");
    }
}

fn print_ingest_rows(metrics: &[IngestMetric]) {
    for m in metrics {
        println!(
            "univ {:>4}  base {:>8}  ingest {:>9.1} ms  chase {:>10.1} ms  \
             fixpoint {:>8} ({})  query {:>8.3} ms  answers {:>6}  \
             maintain-build {:>10.1} ms  snap save {:>8.1} ms / load {:>8.1} ms \
             ({} B)  1-fact insert {:>7.3} ms",
            m.universities,
            m.base_atoms,
            m.ingest_ms,
            m.chase_ms,
            m.fixpoint_atoms,
            if m.chase_complete { "complete" } else { "CUT" },
            m.query_ms,
            m.answers,
            m.maintain_build_ms,
            m.snapshot_save_ms,
            m.snapshot_load_ms,
            m.snapshot_bytes,
            m.maintain_insert_ms,
        );
    }
}

fn run_ingest_smoke() {
    // CI smoke for E18: the two small scales (~10^3 and ~10^4 base atoms),
    // each with an enforced wall-clock bar on the whole measured pipeline
    // (ingest + chase + maintain build + snapshot round-trip). The bars
    // are ~20x over measured dev-machine times so they only trip on a
    // gross regression (e.g. batching accidentally bypassed), not on
    // shared-container noise.
    let metrics = ingest_smoke();
    print_ingest_rows(&metrics);
    let bars_ms = [4_000.0, 30_000.0];
    let mut ok = true;
    for (m, bar) in metrics.iter().zip(bars_ms) {
        let total =
            m.ingest_ms + m.chase_ms + m.maintain_build_ms + m.snapshot_save_ms + m.snapshot_load_ms;
        if !m.chase_complete {
            eprintln!("ingest smoke FAILED: univ={} chase hit the budget", m.universities);
            ok = false;
        }
        if m.answers == 0 {
            eprintln!("ingest smoke FAILED: univ={} query returned no answers", m.universities);
            ok = false;
        }
        if total > bar {
            eprintln!(
                "ingest smoke FAILED: univ={} pipeline took {total:.0} ms (bar {bar:.0} ms)",
                m.universities
            );
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
    println!("ingest smoke OK");
}

/// Ratio of total paired wall times `sum(b)/sum(a)` over `rounds`
/// back-to-back rounds, alternating which side goes first. Pairing keeps
/// machine-speed drift from landing on one side only, alternation cancels
/// any first-runner advantage, and summing averages per-run scheduler
/// noise down by `sqrt(rounds)` — single runs on a shared container
/// bounce ±10%, far too much for any per-run statistic to compare.
fn paired_total_ratio(rounds: u32, mut a: impl FnMut(), mut b: impl FnMut()) -> f64 {
    let time = |f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        f();
        t0.elapsed().as_nanos() as u64
    };
    let (mut total_a, mut total_b) = (0u64, 0u64);
    for round in 0..rounds {
        if round % 2 == 0 {
            total_a += time(&mut a);
            total_b += time(&mut b);
        } else {
            total_b += time(&mut b);
            total_a += time(&mut a);
        }
    }
    total_b as f64 / total_a as f64
}

fn run_certify_sample() {
    use gtgd_bench::workloads::{org_db, org_ontology, path_db, tc_ontology};
    use gtgd_chase::{certificates_to_json, CertificateStore, ChaseBudget, ChaseRunner};
    use gtgd_query::{parse_cq, Strategy};

    let samples: [(&str, Vec<gtgd_chase::Tgd>, gtgd_data::Instance, &str); 2] = [
        (
            "E9 org",
            org_ontology(),
            org_db(12),
            "Q(X) :- WorksIn(X,D), Dept(D)",
        ),
        ("E15 tc", tc_ontology(), path_db(12), "Q(X,Y) :- E(X,Y)"),
    ];
    let mut total = 0usize;
    for (name, tgds, db, query) in &samples {
        let outcome = ChaseRunner::new(tgds)
            .budget(ChaseBudget::levels(4))
            .certify(true)
            .run(db);
        let store = CertificateStore::new(db, tgds, outcome.firings.expect("certified run"));
        let q = parse_cq(query).unwrap();
        for strategy in [Strategy::Backtrack, Strategy::Wcoj] {
            let certs = store.certify_answers(&q, &outcome.instance, strategy);
            assert!(!certs.is_empty(), "{name}: no certifiable answers");
            let json = certificates_to_json(&certs);
            match gtgd_check::check_all(&json) {
                Ok(n) => {
                    println!("{name} {strategy:?}: {n} certificate(s) accepted");
                    total += n;
                }
                Err((i, e)) => {
                    eprintln!("certify sample FAILED: {name} {strategy:?} cert {i}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    println!("certify sample OK ({total} certificates)");
}

fn run_cert_smoke() {
    use gtgd_bench::workloads::{path_db, tc_ontology};
    use gtgd_chase::{chase, ChaseBudget, ChaseRunner};

    assert!(
        !gtgd_data::prov::enabled(),
        "provenance gate must be off by default"
    );
    let tgds = tc_ontology();
    let db = path_db(100);
    let expect = chase(&db, &tgds, &ChaseBudget::unbounded()).instance.len();
    // Deterministic half of the contract: an uncertified facade run must
    // not materialize firings or leave the gate enabled.
    let warm = ChaseRunner::new(&tgds).run(&db);
    assert_eq!(warm.instance.len(), expect);
    assert!(
        warm.firings.is_none(),
        "uncertified run must carry no firings"
    );
    assert!(
        !gtgd_data::prov::enabled(),
        "provenance gate must stay off after an uncertified run"
    );

    // The acceptance guard: with no collector installed, the facade (which
    // now carries the provenance branch in fire_row) must stay within
    // noise of the legacy free function — same pairing and 25% slack as
    // the obs smoke, for the same shared-container reasons.
    let ratio = paired_total_ratio(
        10,
        || {
            let r = chase(&db, &tgds, &ChaseBudget::unbounded());
            assert_eq!(r.instance.len(), expect);
        },
        || {
            let o = ChaseRunner::new(&tgds).run(&db);
            assert_eq!(o.instance.len(), expect);
        },
    );
    println!("cert smoke: uncertified/legacy paired total ratio {ratio:.3}");
    if ratio > 1.25 {
        eprintln!("cert smoke FAILED: disabled-provenance overhead above 25% of legacy chase");
        std::process::exit(1);
    }

    // Informational: what switching the collector ON costs (EXPERIMENTS.md
    // §certificates records this; it is not a pass/fail bound — capture is
    // opt-in and pays for the record it produces).
    let on_ratio = paired_total_ratio(
        10,
        || {
            let o = ChaseRunner::new(&tgds).run(&db);
            assert_eq!(o.instance.len(), expect);
        },
        || {
            let o = ChaseRunner::new(&tgds).certify(true).run(&db);
            assert_eq!(o.instance.len(), expect);
            assert!(o.firings.is_some());
        },
    );
    println!("cert smoke: capture-on/off paired total ratio {on_ratio:.3} (informational)");
    println!("cert smoke OK");
}

fn run_obs_smoke() {
    use gtgd_bench::workloads::{path_db, tc_ontology};
    use gtgd_chase::{chase, ChaseBudget, ChaseRunner};

    assert!(
        !gtgd_data::obs::enabled(),
        "probe gate must be off by default"
    );
    let tgds = tc_ontology();
    // Long enough that per-run timer noise stays in the single digits;
    // sub-25ms cells bounce ±7%+ on shared containers.
    let db = path_db(100);
    // Warm both paths once (index caches, allocator) before timing, and
    // check the deterministic half of the contract: an untraced facade
    // run must not materialize a report or leave the gate enabled.
    let expect = chase(&db, &tgds, &ChaseBudget::unbounded()).instance.len();
    let warm = ChaseRunner::new(&tgds).run(&db);
    assert_eq!(warm.instance.len(), expect);
    assert!(warm.report.is_none(), "untraced run must carry no report");
    assert!(
        !gtgd_data::obs::enabled(),
        "probe gate must stay off after an untraced run"
    );

    let ratio = paired_total_ratio(
        10,
        || {
            let r = chase(&db, &tgds, &ChaseBudget::unbounded());
            assert_eq!(r.instance.len(), expect);
        },
        || {
            let o = ChaseRunner::new(&tgds).run(&db);
            assert_eq!(o.instance.len(), expect);
        },
    );
    println!("obs smoke: facade/legacy paired total ratio {ratio:.3}");
    // Gross-regression guard, not the acceptance measurement: the <3%
    // disabled-probe bound is established by the interleaved A/B against
    // the pre-obs seed build (DESIGN.md §10). Shared CI containers have
    // slow phases longer than a measurement pair, so individual batches
    // can drift double digits either way; 25% slack stays above that
    // noise while still failing on any always-on instrumentation left
    // in the wrapper path.
    if ratio > 1.25 {
        eprintln!("obs smoke FAILED: facade overhead above 25% of legacy chase");
        std::process::exit(1);
    }
    println!("obs smoke OK");
}
