//! Before/after benchmark for the compiled query kernel
//! (`BENCH_kernel.json`).
//!
//! The kernel PR replaced the map-based `HomSearch` backtracker with
//! compiled access plans (`gtgd_query::CompiledQuery`) and made the
//! restricted chase incremental. This module re-runs the four experiment
//! series the kernel touches (E2, E9, E12, E15), pulls the headline cells
//! out of the freshly measured tables, and pairs them with the seed-commit
//! baselines recorded in EXPERIMENTS.md before the kernel landed. The
//! result is a small JSON report (`--kernel-json` on the experiments
//! binary) that makes the speedup auditable without diffing prose.

use crate::experiments::{
    e12_engine_shootout, e15_parallel_shootout, e16_incremental_maintenance, e2_chase,
    e9_chase_ablation, ExperimentTable,
};
use crate::json::escape;

/// One before/after measurement for a single experiment cell.
#[derive(Debug, Clone)]
pub struct KernelMetric {
    /// Experiment id the cell comes from (`E2`, `E9`, `E12`, `E15`).
    pub experiment: &'static str,
    /// Human-readable metric name (the source column header).
    pub metric: &'static str,
    /// Workload size (the row key, first column of the table).
    pub n: &'static str,
    /// Seed-commit time in ms (EXPERIMENTS.md, best-of-3).
    pub before_ms: f64,
    /// Freshly measured time in ms (min over adaptive repeats, same
    /// workload).
    pub after_ms: f64,
}

impl KernelMetric {
    /// Speedup factor `before / after` (∞-safe: 0 if `after` is 0).
    pub fn speedup(&self) -> f64 {
        if self.after_ms > 0.0 {
            self.before_ms / self.after_ms
        } else {
            0.0
        }
    }

    /// Worker-pool width of the measured cell (`par@N` columns), reported
    /// in the BENCH JSON under the obs metric name `pool.max_width` so the
    /// tables and [`gtgd_data::obs::RunReport`] use one vocabulary.
    pub fn pool_width(&self) -> Option<u64> {
        let (_, rest) = self.metric.split_once("par@")?;
        rest.split_whitespace().next()?.parse().ok()
    }
}

/// Finds the cell at (row with first column == `row_key`, column named
/// `col`) and parses it as milliseconds.
fn cell_ms(t: &ExperimentTable, row_key: &str, col: &str) -> f64 {
    let ci = t
        .columns
        .iter()
        .position(|c| c == col)
        .unwrap_or_else(|| panic!("{}: no column {col:?}", t.id));
    let row = t
        .rows
        .iter()
        .find(|r| r.first().is_some_and(|k| k == row_key))
        .unwrap_or_else(|| panic!("{}: no row {row_key:?}", t.id));
    row[ci]
        .parse()
        .unwrap_or_else(|_| panic!("{}: cell {row_key}/{col} is not a number", t.id))
}

/// Extracts the kernel-relevant cells from freshly measured tables,
/// pairing each with its seed-commit baseline. Split from
/// [`kernel_benchmark`] so tests can drive it with synthetic tables.
pub fn kernel_metrics(
    e2: &ExperimentTable,
    e9: &ExperimentTable,
    e12: &ExperimentTable,
    e15: &ExperimentTable,
) -> Vec<KernelMetric> {
    // Baselines: EXPERIMENTS.md as of the pre-kernel seed commit
    // (best-of-3 ms on the same container; largest workload per series).
    let spec: [(
        &'static str,
        &ExperimentTable,
        &'static str,
        &'static str,
        f64,
    ); 8] = [
        ("E9", e9, "restricted ms", "400", 236.0),
        ("E9", e9, "oblivious ms", "400", 1.9),
        ("E12", e12, "enum ms", "400", 4.74),
        ("E12", e12, "enum par@4 ms", "400", 5.28),
        ("E2", e2, "chase↓ ms", "400", 92.5),
        ("E2", e2, "chase↓ par@4 ms", "400", 7.7),
        ("E15", e15, "chase seq ms", "400", 553.0),
        ("E15", e15, "chase par@4 ms", "400", 505.0),
    ];
    spec.iter()
        .map(|&(experiment, table, metric, n, before_ms)| KernelMetric {
            experiment,
            metric,
            n,
            before_ms,
            after_ms: cell_ms(table, n, metric),
        })
        .collect()
}

/// Extracts the incremental-maintenance cells from a freshly measured E16
/// table (DESIGN §13). Unlike [`kernel_metrics`] there is no static seed
/// baseline: the "before" is the from-scratch re-chase measured by the
/// *same* run on the same grown base, so the pair is an apples-to-apples
/// recompute-vs-maintain comparison rather than a commit-over-commit one.
pub fn maintenance_metrics(e16: &ExperimentTable) -> Vec<KernelMetric> {
    let spec: [(&'static str, &'static str); 4] = [
        ("insert 1 fact ms", "org/400"),
        ("retract 1 fact ms", "org/400"),
        ("insert 1 fact ms", "tc/120"),
        ("retract 1 fact ms", "tc/120"),
    ];
    spec.iter()
        .map(|&(metric, n)| KernelMetric {
            experiment: "E16",
            metric,
            n,
            before_ms: cell_ms(e16, n, "full re-chase ms"),
            after_ms: cell_ms(e16, n, metric),
        })
        .collect()
}

/// Runs E2, E9, E12, E15 and E16 and returns the kernel before/after
/// metrics plus the maintenance recompute-vs-maintain pairs.
pub fn kernel_benchmark() -> Vec<KernelMetric> {
    let e2 = e2_chase();
    let e9 = e9_chase_ablation();
    let e12 = e12_engine_shootout();
    let e15 = e15_parallel_shootout();
    let mut metrics = kernel_metrics(&e2, &e9, &e12, &e15);
    metrics.extend(maintenance_metrics(&e16_incremental_maintenance()));
    metrics
}

/// Renders the metrics as the `BENCH_kernel.json` document.
pub fn kernel_json(metrics: &[KernelMetric]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"description\": \"{}\",\n",
        escape(
            "Compiled query kernel: before/after timings in ms for the \
             experiment cells the kernel touches. 'before' is the \
             pre-kernel seed baseline from EXPERIMENTS.md (best-of-3); \
             'after' is measured by this run on the same workloads (min \
             over adaptive repeats). E16 rows pair differently: 'before' \
             is the from-scratch re-chase of the updated base and 'after' \
             the single-fact maintained update, both measured by this run."
        )
    ));
    out.push_str("  \"metrics\": [\n");
    let items: Vec<String> = metrics
        .iter()
        .map(|m| {
            let pool = m.pool_width().map_or(String::new(), |w| {
                format!(
                    ",\n      \"{}\": {w}",
                    gtgd_data::obs::Metric::PoolMaxWidth.name()
                )
            });
            format!(
                "    {{\n      \"experiment\": \"{}\",\n      \"metric\": \"{}\",\n      \
                 \"n\": \"{}\",\n      \"before_ms\": {:.3},\n      \"after_ms\": {:.3},\n      \
                 \"speedup\": {:.2}{pool}\n    }}",
                escape(m.experiment),
                escape(m.metric),
                escape(m.n),
                m.before_ms,
                m.after_ms,
                m.speedup()
            )
        })
        .collect();
    out.push_str(&items.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(id: &str, columns: &[&str], rows: &[&[&str]]) -> ExperimentTable {
        ExperimentTable {
            id: id.into(),
            title: String::new(),
            claim: String::new(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: rows
                .iter()
                .map(|r| r.iter().map(|s| s.to_string()).collect())
                .collect(),
            notes: String::new(),
        }
    }

    fn fixtures() -> (
        ExperimentTable,
        ExperimentTable,
        ExperimentTable,
        ExperimentTable,
    ) {
        let e2 = table(
            "E2",
            &["n", "chase↓ ms", "chase↓ par@4 ms"],
            &[&["400", "40.0", "5.0"]],
        );
        let e9 = table(
            "E9",
            &["n", "oblivious ms", "restricted ms"],
            &[&["200", "1.0", "30.0"], &["400", "2.0", "59.0"]],
        );
        let e12 = table(
            "E12",
            &["grid cols", "enum ms", "enum par@4 ms"],
            &[&["400", "2.37", "2.64"]],
        );
        let e15 = table(
            "E15",
            &["n", "chase seq ms", "chase par@4 ms"],
            &[&["400", "300.0", "280.0"]],
        );
        (e2, e9, e12, e15)
    }

    #[test]
    fn extracts_largest_workload_cells() {
        let (e2, e9, e12, e15) = fixtures();
        let metrics = kernel_metrics(&e2, &e9, &e12, &e15);
        assert_eq!(metrics.len(), 8);
        let restricted = metrics
            .iter()
            .find(|m| m.experiment == "E9" && m.metric == "restricted ms")
            .unwrap();
        assert_eq!(restricted.n, "400");
        assert_eq!(restricted.before_ms, 236.0);
        assert_eq!(restricted.after_ms, 59.0);
        assert!((restricted.speedup() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn maintenance_pairs_rechase_with_incremental_cells() {
        let e16 = table(
            "E16",
            &[
                "workload/n",
                "full re-chase ms",
                "insert 1 fact ms",
                "retract 1 fact ms",
            ],
            &[
                &["org/400", "1.2", "0.01", "0.6"],
                &["tc/120", "400.0", "40.0", "20.0"],
            ],
        );
        let metrics = maintenance_metrics(&e16);
        assert_eq!(metrics.len(), 4);
        assert!(metrics.iter().all(|m| m.experiment == "E16"));
        let ins = &metrics[0];
        assert_eq!((ins.metric, ins.n), ("insert 1 fact ms", "org/400"));
        assert_eq!((ins.before_ms, ins.after_ms), (1.2, 0.01));
        assert!((ins.speedup() - 120.0).abs() < 1e-9);
        // The re-chase 'before' is shared by both ops of a workload.
        assert_eq!(metrics[1].before_ms, 1.2);
        assert_eq!(metrics[3].before_ms, 400.0);
    }

    #[test]
    fn json_is_balanced_and_complete() {
        let (e2, e9, e12, e15) = fixtures();
        let json = kernel_json(&kernel_metrics(&e2, &e9, &e12, &e15));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches("\"experiment\"").count(), 8);
        assert!(json.contains("\"before_ms\": 236.000"));
        assert!(json.contains("\"speedup\": 4.00"));
    }
}
