//! Differential testing of the compiled query kernel against the
//! *historical* generic backtracking `HomSearch` (PR 1 vintage), embedded
//! below as `reference`: on seeded random CQs × random instances × modes
//! (plain / injective / fixed bindings / restrict_images), the kernel — and
//! the `HomSearch` wrapper now built on it — must produce exactly the same
//! homomorphism *sets*, with `exists` / `count` / `first` agreeing, and the
//! parallel split (`par_table` / `par_all`) matching at widths 1, 2, and 4.

use gtgd::data::{GroundAtom, Instance, Predicate, Rng, Value};
use gtgd::query::{CompiledQuery, HomSearch, QAtom, Term, Var};
use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;

const WORKER_WIDTHS: [usize; 3] = [1, 2, 4];

/// The pre-kernel `HomSearch`: generic backtracking over `HashMap`
/// assignments with dynamic most-selective-atom ordering. Copied verbatim
/// (modulo visibility) from the engine this PR replaced, so the suite pins
/// today's kernel to yesterday's semantics.
mod reference {
    use super::*;

    pub struct RefSearch<'a> {
        atoms: &'a [QAtom],
        target: &'a Instance,
        pub fixed: HashMap<Var, Value>,
        pub injective: bool,
        pub allowed: Option<HashSet<Value>>,
    }

    impl<'a> RefSearch<'a> {
        pub fn new(atoms: &'a [QAtom], target: &'a Instance) -> Self {
            RefSearch {
                atoms,
                target,
                fixed: HashMap::new(),
                injective: false,
                allowed: None,
            }
        }

        pub fn all(&self) -> Vec<HashMap<Var, Value>> {
            let mut out = Vec::new();
            self.for_each(|h| {
                out.push(h.clone());
                ControlFlow::Continue(())
            });
            out
        }

        pub fn for_each(&self, mut f: impl FnMut(&HashMap<Var, Value>) -> ControlFlow<()>) -> bool {
            let mut assignment = self.fixed.clone();
            if self.injective {
                let mut used = HashSet::new();
                for &v in assignment.values() {
                    if !used.insert(v) {
                        return false;
                    }
                }
            }
            if let Some(allowed) = &self.allowed {
                if assignment.values().any(|v| !allowed.contains(v)) {
                    return false;
                }
            }
            let mut pending: Vec<usize> = (0..self.atoms.len()).collect();
            let mut used: HashSet<Value> = assignment.values().copied().collect();
            self.search(&mut pending, &mut assignment, &mut used, &mut f)
                .is_break()
        }

        fn candidates(&self, atom: &QAtom, assignment: &HashMap<Var, Value>) -> Vec<usize> {
            let mut best: Option<&[usize]> = None;
            for (pos, t) in atom.args.iter().enumerate() {
                let bound = match *t {
                    Term::Const(c) => Some(c),
                    Term::Var(v) => assignment.get(&v).copied(),
                };
                if let Some(val) = bound {
                    let ids = self.target.atoms_matching(atom.predicate, pos, val);
                    if best.is_none_or(|b| ids.len() < b.len()) {
                        best = Some(ids);
                    }
                }
            }
            best.unwrap_or_else(|| self.target.atoms_with_pred(atom.predicate))
                .to_vec()
        }

        fn search(
            &self,
            pending: &mut Vec<usize>,
            assignment: &mut HashMap<Var, Value>,
            used: &mut HashSet<Value>,
            f: &mut impl FnMut(&HashMap<Var, Value>) -> ControlFlow<()>,
        ) -> ControlFlow<()> {
            if pending.is_empty() {
                return f(assignment);
            }
            let (slot, _) = pending
                .iter()
                .enumerate()
                .map(|(slot, &ai)| (slot, self.candidates(&self.atoms[ai], assignment).len()))
                .min_by_key(|&(_, n)| n)
                .expect("pending nonempty");
            let ai = pending.swap_remove(slot);
            let atom = &self.atoms[ai];
            let cand = self.candidates(atom, assignment);
            for ci in cand {
                let ground = self.target.atom(ci);
                if ground.args.len() != atom.args.len() {
                    continue;
                }
                let mut newly: Vec<Var> = Vec::new();
                let mut ok = true;
                for (t, &gv) in atom.args.iter().zip(ground.args.iter()) {
                    match *t {
                        Term::Const(c) => {
                            if c != gv {
                                ok = false;
                                break;
                            }
                        }
                        Term::Var(v) => match assignment.get(&v) {
                            Some(&bound) => {
                                if bound != gv {
                                    ok = false;
                                    break;
                                }
                            }
                            None => {
                                if self.injective && used.contains(&gv) {
                                    ok = false;
                                    break;
                                }
                                if let Some(allowed) = &self.allowed {
                                    if !allowed.contains(&gv) {
                                        ok = false;
                                        break;
                                    }
                                }
                                assignment.insert(v, gv);
                                used.insert(gv);
                                newly.push(v);
                            }
                        },
                    }
                }
                if ok && self.search(pending, assignment, used, f).is_break() {
                    return ControlFlow::Break(());
                }
                for v in newly {
                    let val = assignment.remove(&v).expect("was bound");
                    used.remove(&val);
                }
            }
            pending.push(ai);
            let last = pending.len() - 1;
            pending.swap(slot, last);
            ControlFlow::Continue(())
        }
    }
}

/// 4-value domain shared by all random instances.
fn dom() -> Vec<Value> {
    ["a", "b", "c", "d"]
        .iter()
        .map(|s| Value::named(s))
        .collect()
}

/// Random instance over unary `U`, binary `E`/`R`, ternary `T`.
fn arb_db(rng: &mut Rng) -> Instance {
    let d = dom();
    let mut i = Instance::new();
    let n_atoms = 3 + rng.below(18) as usize;
    for _ in 0..n_atoms {
        match rng.below(4) {
            0 => {
                i.insert(GroundAtom::new(
                    Predicate::new("U"),
                    vec![d[rng.below(4) as usize]],
                ));
            }
            1 => {
                i.insert(GroundAtom::new(
                    Predicate::new("E"),
                    vec![d[rng.below(4) as usize], d[rng.below(4) as usize]],
                ));
            }
            2 => {
                i.insert(GroundAtom::new(
                    Predicate::new("R"),
                    vec![d[rng.below(4) as usize], d[rng.below(4) as usize]],
                ));
            }
            _ => {
                i.insert(GroundAtom::new(
                    Predicate::new("T"),
                    vec![
                        d[rng.below(4) as usize],
                        d[rng.below(4) as usize],
                        d[rng.below(4) as usize],
                    ],
                ));
            }
        }
    }
    i
}

/// Random CQ body over the same schema: 1–4 atoms, variables X0..X4,
/// occasional constants and repeated variables.
fn arb_atoms(rng: &mut Rng) -> Vec<QAtom> {
    let d = dom();
    let term = |rng: &mut Rng| -> Term {
        if rng.chance(0.2) {
            Term::Const(d[rng.below(4) as usize])
        } else {
            Term::Var(Var(rng.below(5) as u32))
        }
    };
    let n = 1 + rng.below(4) as usize;
    (0..n)
        .map(|_| match rng.below(4) {
            0 => QAtom::new(Predicate::new("U"), vec![term(rng)]),
            1 => QAtom::new(Predicate::new("E"), vec![term(rng), term(rng)]),
            2 => QAtom::new(Predicate::new("R"), vec![term(rng), term(rng)]),
            _ => QAtom::new(Predicate::new("T"), vec![term(rng), term(rng), term(rng)]),
        })
        .collect()
}

/// Canonical form of a homomorphism set: sorted vectors of sorted pairs.
fn canon(homs: &[HashMap<Var, Value>]) -> Vec<Vec<(Var, Value)>> {
    let mut out: Vec<Vec<(Var, Value)>> = homs
        .iter()
        .map(|h| {
            let mut kv: Vec<(Var, Value)> = h.iter().map(|(&k, &v)| (k, v)).collect();
            kv.sort_unstable();
            kv
        })
        .collect();
    out.sort();
    out
}

/// One differential case: reference vs wrapper vs raw kernel vs parallel.
fn check_case(
    atoms: &[QAtom],
    db: &Instance,
    fixed: &[(Var, Value)],
    injective: bool,
    allowed: Option<&HashSet<Value>>,
    ctx: &str,
) {
    let mut reference = reference::RefSearch::new(atoms, db);
    reference.fixed = fixed.iter().copied().collect();
    reference.injective = injective;
    reference.allowed = allowed.cloned();
    let expected = canon(&reference.all());

    // The HomSearch wrapper (now kernel-backed).
    let wrapper = || {
        let mut s = HomSearch::new(atoms, db).fix(fixed.iter().copied());
        if injective {
            s = s.injective();
        }
        if let Some(a) = allowed {
            s = s.restrict_images(a.clone());
        }
        s
    };
    assert_eq!(canon(&wrapper().all()), expected, "all() {ctx}");
    assert_eq!(wrapper().count(), expected.len(), "count() {ctx}");
    assert_eq!(wrapper().exists(), !expected.is_empty(), "exists() {ctx}");
    match wrapper().first() {
        Some(h) => assert!(
            expected.contains(&canon(&[h])[0]),
            "first() not in reference set {ctx}"
        ),
        None => assert!(expected.is_empty(), "first() missed a hom {ctx}"),
    }

    // The raw kernel, driven directly.
    let plan = CompiledQuery::compile_with_extra(atoms, fixed.iter().map(|&(v, _)| v));
    let kernel = || {
        let mut k = plan
            .search(db)
            .fix_slots(fixed.iter().map(|&(v, x)| (plan.slot_of(v).unwrap(), x)));
        if injective {
            k = k.injective();
        }
        if let Some(a) = allowed {
            k = k.restrict_images(a);
        }
        k
    };
    assert_eq!(
        canon(&kernel().table().to_maps()),
        expected,
        "table() {ctx}"
    );
    for w in WORKER_WIDTHS {
        assert_eq!(
            canon(&kernel().par_table(w).to_maps()),
            expected,
            "par_table({w}) {ctx}"
        );
        assert_eq!(canon(&wrapper().par_all(w)), expected, "par_all({w}) {ctx}");
    }
}

#[test]
fn kernel_matches_reference_plain_and_modes() {
    let mut rng = Rng::seed(0x5eed_cafe);
    let d = dom();
    for case in 0..160u32 {
        let db = arb_db(&mut rng);
        let atoms = arb_atoms(&mut rng);
        let injective = rng.chance(0.34);
        let restrict = rng.chance(0.34);
        let allowed: Option<HashSet<Value>> = restrict.then(|| {
            d.iter()
                .copied()
                .filter(|_| rng.chance(0.67))
                .collect::<HashSet<Value>>()
        });
        let mut fixed: Vec<(Var, Value)> = Vec::new();
        if rng.chance(0.5) {
            // Fix 1–2 variables, sometimes a ghost var absent from atoms.
            for _ in 0..=rng.below(2) {
                let v = if rng.chance(0.17) {
                    Var(40 + rng.below(2) as u32)
                } else {
                    Var(rng.below(5) as u32)
                };
                let x = d[rng.below(4) as usize];
                if fixed.iter().all(|&(u, _)| u != v) {
                    fixed.push((v, x));
                }
            }
        }
        let ctx = format!(
            "case {case}: {} atoms, inj={injective}, fixed={}, allowed={}",
            atoms.len(),
            fixed.len(),
            allowed.is_some()
        );
        check_case(&atoms, &db, &fixed, injective, allowed.as_ref(), &ctx);
    }
}

#[test]
fn kernel_matches_reference_on_edge_shapes() {
    let db = arb_db(&mut Rng::seed(7));
    let d = dom();
    // Empty atom list, with and without fixed bindings.
    check_case(&[], &db, &[], false, None, "empty atoms");
    check_case(&[], &db, &[(Var(3), d[0])], true, None, "empty atoms + fix");
    // Duplicate fixed values under injectivity: both engines yield nothing.
    check_case(
        &[QAtom::new(
            Predicate::new("E"),
            vec![Term::Var(Var(0)), Term::Var(Var(1))],
        )],
        &db,
        &[(Var(0), d[1]), (Var(1), d[1])],
        true,
        None,
        "duplicate fixed + injective",
    );
    // Unsatisfiable constant.
    check_case(
        &[QAtom::new(
            Predicate::new("U"),
            vec![Term::Const(Value::named("zz"))],
        )],
        &db,
        &[],
        false,
        None,
        "foreign constant",
    );
    // Empty allowed set.
    check_case(
        &[QAtom::new(
            Predicate::new("E"),
            vec![Term::Var(Var(0)), Term::Var(Var(1))],
        )],
        &db,
        &[],
        false,
        Some(&HashSet::new()),
        "empty allowed set",
    );
}
