//! E18 — ingestion-at-scale benchmark (`BENCH_ingest.json`).
//!
//! Drives the LUBM-style generator through the full `Source` →
//! [`Program`] → chase → query → snapshot → maintenance pipeline at
//! scales from ~10³ to beyond 10⁶ base atoms, recording where the time
//! goes as the workload grows three orders of magnitude:
//!
//! * `ingest_ms` — generate + stream through the batching
//!   [`InstanceSink`] (`Instance::insert_batch`) into a program;
//! * `chase_ms` — oblivious fixpoint under the lowered LUBM ontology;
//! * `query_ms` — a prepared 3-atom join (professors with the university
//!   their department belongs to) over the saturated instance;
//! * `snapshot_save_ms` / `snapshot_load_ms` — persisting and reloading
//!   the maintained fixpoint;
//! * `maintain_insert_ms` — a single-fact delta chase against the
//!   maintained instance: the headline number, because it should stay
//!   roughly flat while everything else scales with `n`.
//!
//! Heavy legs (chase, maintenance build, snapshot) are timed single-shot
//! — at 10⁶ atoms a repeat-until-stable harness would turn one benchmark
//! row into minutes — while the cheap per-operation legs (query, single
//! insert) use the adaptive-repeat `bench_ms` harness.
//!
//! [`InstanceSink`]: gtgd_ingest::InstanceSink
//! [`Program`]: gtgd_ingest::Program

use crate::experiments::bench_ms;
use crate::json::escape;
use gtgd_chase::ChaseBudget;
use gtgd_data::GroundAtom;
use gtgd_ingest::{ingest, LubmConfig, LubmSource, Program};
use gtgd_query::{parse_cq, Engine};
use gtgd_storage::{load_snapshot, save_snapshot};
use std::path::PathBuf;
use std::time::Instant;

/// The E18 scaling query: a 3-atom join over derived and base relations.
pub const E18_QUERY: &str = "Ans(X,U) :- Professor(X), worksFor(X,D), subOrganizationOf(D,U)";

/// The generator seed every E18 row uses (fixed so `BENCH_ingest.json`
/// is reproducible byte-for-byte across runs and machines).
pub const E18_SEED: u64 = 0x10b3;

/// One measured row of `BENCH_ingest.json`.
#[derive(Debug, Clone)]
pub struct IngestMetric {
    /// Scale knob: number of universities.
    pub universities: usize,
    /// Base atoms after ingestion (deduplicated).
    pub base_atoms: usize,
    /// Generate + stream + batched insert, in ms.
    pub ingest_ms: f64,
    /// Oblivious chase to the fixpoint, in ms (single-shot).
    pub chase_ms: f64,
    /// Atoms in the chased fixpoint.
    pub fixpoint_atoms: usize,
    /// Whether the chase completed within the atom budget.
    pub chase_complete: bool,
    /// Prepared evaluation of [`E18_QUERY`] over the fixpoint, in ms.
    pub query_ms: f64,
    /// Answers the query returns.
    pub answers: usize,
    /// Chasing into the maintained (incremental) state, in ms
    /// (single-shot; pays firing/dependency tracking on top of the chase).
    pub maintain_build_ms: f64,
    /// Persisting the maintained fixpoint, in ms (single-shot).
    pub snapshot_save_ms: f64,
    /// Snapshot file size in bytes.
    pub snapshot_bytes: u64,
    /// Loading the snapshot back to a query-ready instance, in ms.
    pub snapshot_load_ms: f64,
    /// One single-fact insert through the delta chase, in ms (adaptive
    /// repeats over *fresh* facts, so dedup never shortcuts the work).
    pub maintain_insert_ms: f64,
}

fn once_ms<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t = Instant::now();
    let out = f();
    (t.elapsed().as_secs_f64() * 1e3, out)
}

fn temp_file(universities: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "gtgd-ingest-bench-{}-u{universities}.gsnap",
        std::process::id()
    ))
}

/// Measures one scale row end to end.
pub fn measure(universities: usize) -> IngestMetric {
    let cfg = LubmConfig {
        universities,
        seed: E18_SEED,
    };
    let (ingest_ms, program): (f64, Program) = once_ms(|| {
        let mut src = LubmSource::new(cfg);
        ingest(&mut src).expect("LUBM generator is always well-formed")
    });
    let base_atoms = program.facts.len();
    let budget = ChaseBudget::atoms(20_000_000);

    let (chase_ms, chased) = once_ms(|| program.chase(budget));
    let fixpoint_atoms = chased.instance.len();
    let chase_complete = chased.complete;

    let prepared = Engine::prepare(&parse_cq(E18_QUERY).expect("E18 query parses"));
    let answers = prepared.answers(&chased.instance).len();
    let query_ms = bench_ms(|| prepared.answers(&chased.instance).len());

    let (maintain_build_ms, mut m) = once_ms(|| program.maintain(budget));

    let snap = temp_file(universities);
    let (snapshot_save_ms, _) = once_ms(|| {
        save_snapshot(&snap, &program.tgds, &m).expect("snapshot save");
    });
    let snapshot_bytes = std::fs::metadata(&snap).map(|md| md.len()).unwrap_or(0);
    let (snapshot_load_ms, _) =
        once_ms(|| load_snapshot(&snap).expect("snapshot load").instance().len());
    let _ = std::fs::remove_file(&snap);

    // Fresh professor per repeat: the delta chase must actually fire
    // (Faculty/Employee/Person closure + the worksFor existential).
    let mut k = 0usize;
    let maintain_insert_ms = bench_ms(|| {
        k += 1;
        m.insert([GroundAtom::named("Professor", &[&format!("e18_p{k}")])])
            .atoms_added
    });

    IngestMetric {
        universities,
        base_atoms,
        ingest_ms,
        chase_ms,
        fixpoint_atoms,
        chase_complete,
        query_ms,
        answers,
        maintain_build_ms,
        snapshot_save_ms,
        snapshot_bytes,
        snapshot_load_ms,
        maintain_insert_ms,
    }
}

/// The full E18 sweep: ~10³ → ~10⁴ → ~10⁵ → ~10⁶ base atoms.
pub fn ingest_benchmark() -> Vec<IngestMetric> {
    [1, 8, 80, 800].into_iter().map(measure).collect()
}

/// The CI smoke sweep: the two small scales (~10³ and ~10⁴ atoms).
pub fn ingest_smoke() -> Vec<IngestMetric> {
    [1, 8].into_iter().map(measure).collect()
}

/// Renders the metrics as the `BENCH_ingest.json` document.
pub fn ingest_json(metrics: &[IngestMetric]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"description\": \"{}\",\n",
        escape(
            "E18 ingestion at scale: the LUBM-style generator streamed \
             through the Source API into a program, then chased, queried, \
             snapshotted, and incrementally maintained. Heavy legs \
             (ingest, chase, maintain build, snapshot save/load) are \
             single-shot ms; per-operation legs (query_ms, \
             maintain_insert_ms) are min over adaptive repeats. The \
             single-fact maintain_insert_ms should stay roughly flat \
             across three orders of magnitude of base_atoms."
        )
    ));
    out.push_str(&format!("  \"query\": \"{}\",\n", escape(E18_QUERY)));
    out.push_str(&format!("  \"seed\": {E18_SEED},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!(
            "\"universities\": {}, \"base_atoms\": {}, \"ingest_ms\": {:.3}, \
             \"chase_ms\": {:.3}, \"fixpoint_atoms\": {}, \"chase_complete\": {}, \
             \"query_ms\": {:.3}, \"answers\": {}, \"maintain_build_ms\": {:.3}, \
             \"snapshot_save_ms\": {:.3}, \"snapshot_bytes\": {}, \
             \"snapshot_load_ms\": {:.3}, \"maintain_insert_ms\": {:.3}",
            m.universities,
            m.base_atoms,
            m.ingest_ms,
            m.chase_ms,
            m.fixpoint_atoms,
            m.chase_complete,
            m.query_ms,
            m.answers,
            m.maintain_build_ms,
            m.snapshot_save_ms,
            m.snapshot_bytes,
            m.snapshot_load_ms,
            m.maintain_insert_ms,
        ));
        out.push_str(if i + 1 == metrics.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smallest_row_measures_sanely() {
        let m = measure(1);
        assert!(m.base_atoms >= 1000, "{}", m.base_atoms);
        assert!(m.chase_complete);
        assert!(m.fixpoint_atoms > m.base_atoms);
        assert!(m.answers > 30, "{}", m.answers);
        assert!(m.snapshot_bytes > 0);
        assert!(m.maintain_insert_ms >= 0.0);
    }

    #[test]
    fn json_renders_all_rows() {
        let m = measure(1);
        let doc = ingest_json(&[m]);
        assert!(doc.contains("\"universities\": 1"), "{doc}");
        assert!(doc.contains("maintain_insert_ms"), "{doc}");
    }
}
