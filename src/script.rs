//! A small script format and interpreter for the `gtgd` CLI: declare facts,
//! TGDs, and a query, then evaluate open-world (OMQ) or closed-world (CQS).
//!
//! ```text
//! # comments start with '#'
//! mode open                          # or: mode closed
//! fact Emp(ann).
//! fact WorksIn(ann, sales).
//! tgd Emp(X) -> WorksIn(X, D).
//! tgd WorksIn(X, D) -> Dept(D).
//! query Q(X) :- WorksIn(X, D), Dept(D).
//! ```
//!
//! Multiple `query` lines form a UCQ. In `closed` mode the facts must
//! satisfy the TGDs (they are integrity constraints); in `open` mode the
//! TGDs are an ontology.

use gtgd_chase::{parse_tgd, Certificate, CertificateStore, ChaseBudget, ChaseRunner, Tgd};
use gtgd_core::{evaluate_omq, Cqs, EvalConfig, Omq};
use gtgd_data::{GroundAtom, Instance, Predicate, Value};
use gtgd_query::{parse_cq, Cq, Engine, Strategy, Ucq};

/// Evaluation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Open-world: certain answers of the OMQ (Section 3.1).
    Open,
    /// Closed-world: direct evaluation under the constraint promise
    /// (Section 3.2).
    Closed,
}

/// One maintenance operation of a `--maintain` script: a line `+Atom(...)`
/// asserts a base fact, `-Atom(...)` retracts one. Operations apply in
/// script order, after the initial `fact` base is chased.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaintOp {
    /// `+Emp(ann).` — assert and incrementally chase.
    Insert(GroundAtom),
    /// `-Emp(ann).` — retract and DRed-repair.
    Retract(GroundAtom),
}

/// A parsed script.
#[derive(Debug, Clone)]
pub struct Script {
    /// The database.
    pub facts: Instance,
    /// The TGDs (ontology or constraints, depending on mode).
    pub tgds: Vec<Tgd>,
    /// The query disjuncts.
    pub queries: Vec<Cq>,
    /// Evaluation mode.
    pub mode: Mode,
    /// Maintenance operations (`+atom` / `-atom` lines), in script order.
    pub ops: Vec<MaintOp>,
}

/// Script errors.
#[derive(Debug, Clone)]
pub struct ScriptError {
    /// Line number (1-based).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScriptError {}

fn err(line: usize, message: impl Into<String>) -> ScriptError {
    ScriptError {
        line,
        message: message.into(),
    }
}

/// Parses a fact like `Emp(ann)` or `WorksIn(ann, sales)`.
fn parse_fact(src: &str, line: usize) -> Result<GroundAtom, ScriptError> {
    let src = src.trim().trim_end_matches('.');
    let open = src
        .find('(')
        .ok_or_else(|| err(line, "expected '(' in fact"))?;
    if !src.ends_with(')') {
        return Err(err(line, "expected ')' at end of fact"));
    }
    let pred = src[..open].trim();
    if pred.is_empty() {
        return Err(err(line, "empty predicate name"));
    }
    let inner = &src[open + 1..src.len() - 1];
    let args: Vec<Value> = if inner.trim().is_empty() {
        Vec::new()
    } else {
        inner
            .split(',')
            .map(|a| Value::named(a.trim().trim_matches('"')))
            .collect()
    };
    Ok(GroundAtom::new(Predicate::new(pred), args))
}

/// Parses a script.
pub fn parse_script(src: &str) -> Result<Script, ScriptError> {
    let mut facts = Instance::new();
    let mut tgds = Vec::new();
    let mut queries = Vec::new();
    let mut mode = Mode::Open;
    let mut ops = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let line = i + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        // Maintenance ops: the sign is glued to the atom (`+Emp(ann).`).
        if let Some(atom_src) = text.strip_prefix('+') {
            ops.push(MaintOp::Insert(parse_fact(atom_src, line)?));
            continue;
        }
        if let Some(atom_src) = text.strip_prefix('-') {
            ops.push(MaintOp::Retract(parse_fact(atom_src, line)?));
            continue;
        }
        let (keyword, rest) = match text.split_once(char::is_whitespace) {
            Some((k, r)) => (k, r.trim()),
            None => (text, ""),
        };
        match keyword {
            "mode" => {
                mode = match rest.trim_end_matches('.') {
                    "open" => Mode::Open,
                    "closed" => Mode::Closed,
                    other => return Err(err(line, format!("unknown mode {other:?}"))),
                };
            }
            "fact" => {
                facts.insert(parse_fact(rest, line)?);
            }
            "tgd" => {
                let t =
                    parse_tgd(rest.trim_end_matches('.')).map_err(|e| err(line, e.to_string()))?;
                tgds.push(t);
            }
            "query" => {
                let q =
                    parse_cq(rest.trim_end_matches('.')).map_err(|e| err(line, e.to_string()))?;
                queries.push(q);
            }
            other => return Err(err(line, format!("unknown directive {other:?}"))),
        }
    }
    if queries.is_empty() {
        return Err(err(src.lines().count(), "script has no query"));
    }
    let arity = queries[0].arity();
    if queries.iter().any(|q| q.arity() != arity) {
        return Err(err(0, "all query lines must share arity"));
    }
    Ok(Script {
        facts,
        tgds,
        queries,
        mode,
        ops,
    })
}

/// Evaluation output.
#[derive(Debug, Clone)]
pub struct ScriptOutput {
    /// Sorted answers rendered as comma-joined constants.
    pub answers: Vec<String>,
    /// Whether the answer set is provably complete (always true for closed
    /// mode).
    pub exact: bool,
    /// The mode that was run.
    pub mode: Mode,
}

/// Runs a parsed script.
pub fn run_script(script: &Script) -> Result<ScriptOutput, Box<dyn std::error::Error>> {
    let ucq = Ucq::new(script.queries.clone());
    let (answers, exact) = match script.mode {
        Mode::Open => {
            let omq = Omq::full_schema(script.tgds.clone(), ucq);
            let out = evaluate_omq(&omq, &script.facts, &EvalConfig::default());
            (out.answers, out.exact)
        }
        Mode::Closed => {
            let cqs = Cqs::new(script.tgds.clone(), ucq);
            (cqs.evaluate(&script.facts)?, true)
        }
    };
    let mut rendered: Vec<String> = answers
        .into_iter()
        .map(|t| {
            t.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    rendered.sort();
    Ok(ScriptOutput {
        answers: rendered,
        exact,
        mode: script.mode,
    })
}

/// Parses and runs in one step.
pub fn eval_script(src: &str) -> Result<ScriptOutput, Box<dyn std::error::Error>> {
    let script = parse_script(src)?;
    run_script(&script)
}

/// Output of a `--maintain` run: one rendered line per operation, then
/// the final answers.
#[derive(Debug, Clone)]
pub struct MaintainOutput {
    /// One line per `+`/`-` op: the op and its maintenance report.
    pub steps: Vec<String>,
    /// Sorted null-free answers over the final maintained instance.
    pub answers: Vec<String>,
    /// Whether the maintained instance is a true fixpoint (false only if
    /// the safety atom cap truncated a diverging ontology).
    pub exact: bool,
}

/// Runs a script's maintenance ops over a [`gtgd_chase::MaintainedInstance`]
/// (the `gtgd --maintain` path, open-world only): chase the `fact` base
/// once, apply each `+atom` / `-atom` incrementally, then evaluate the
/// query disjuncts over the final materialization. Answers are the
/// null-free tuples of the maintained oblivious fixpoint — the certain
/// answers of the OMQ whenever the chase terminated (`exact`).
pub fn run_maintained(script: &Script) -> Result<MaintainOutput, Box<dyn std::error::Error>> {
    if script.mode == Mode::Closed {
        return Err(
            "maintain mode is open-world only (closed mode has no chase to maintain)"
                .to_string()
                .into(),
        );
    }
    // Levels are not maintainable, so the safety net against diverging
    // ontologies is an atom cap instead of the default level budget.
    let mut m = ChaseRunner::new(&script.tgds)
        .budget(ChaseBudget::atoms(1_000_000))
        .maintain(&script.facts);
    let mut steps = Vec::new();
    for op in &script.ops {
        let line = match op {
            MaintOp::Insert(a) => {
                let rep = m.insert([a.clone()]);
                format!(
                    "+{a}: fired={} added={}",
                    rep.triggers_fired, rep.atoms_added
                )
            }
            MaintOp::Retract(a) => {
                let rep = m.retract([a.clone()]);
                format!(
                    "-{a}: overdeleted={} rederived={} removed={} refired={}",
                    rep.atoms_overdeleted,
                    rep.atoms_rederived,
                    rep.atoms_removed,
                    rep.triggers_fired
                )
            }
        };
        steps.push(line);
    }
    let mut rendered: Vec<String> = script
        .queries
        .iter()
        .flat_map(|q| Engine::prepare(q).answers(m.instance()))
        .filter(|t| t.iter().all(|v| v.is_named()))
        .map(|t| {
            t.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    rendered.sort();
    rendered.dedup();
    Ok(MaintainOutput {
        steps,
        answers: rendered,
        exact: m.complete(),
    })
}

/// Builds proof-carrying certificates for a script's answers (the
/// `gtgd --certify` path).
///
/// Open mode runs a *certified* oblivious chase under the default
/// fallback budget ([`EvalConfig::default`]) and certifies every
/// null-free answer of every disjunct against the recorded firing chain.
/// Closed mode needs no chase at all: the facts are the whole world, so
/// every certificate carries an empty firing chain. Either way the
/// output is independently re-checkable with `gtgd-check` — the answers
/// certified here are sound even when the budget stops the chase early
/// (a derivation prefix proves no less), though a truncated chase may
/// certify fewer answers than [`run_script`] reports.
pub fn certify_script(script: &Script) -> Result<Vec<Certificate>, Box<dyn std::error::Error>> {
    let mut certs = Vec::new();
    match script.mode {
        Mode::Open => {
            let outcome = ChaseRunner::new(&script.tgds)
                .budget(EvalConfig::default().fallback_budget)
                .certify(true)
                .run(&script.facts);
            let firings = outcome.firings.expect("certify was requested");
            let store = CertificateStore::new(&script.facts, &script.tgds, firings);
            for q in &script.queries {
                certs.extend(store.certify_answers(q, &outcome.instance, Strategy::Auto));
            }
        }
        Mode::Closed => {
            let store = CertificateStore::new(&script.facts, &script.tgds, Vec::new());
            for q in &script.queries {
                certs.extend(store.certify_answers(q, &script.facts, Strategy::Auto));
            }
        }
    }
    Ok(certs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_world_script() {
        let out = eval_script(
            "# demo\n\
             fact Emp(ann).\n\
             tgd Emp(X) -> WorksIn(X, D).\n\
             tgd WorksIn(X, D) -> Dept(D).\n\
             query Q(X) :- WorksIn(X, D), Dept(D).\n",
        )
        .unwrap();
        assert!(out.exact);
        assert_eq!(out.answers, vec!["ann"]);
    }

    #[test]
    fn closed_world_script_checks_promise() {
        let bad = eval_script(
            "mode closed\n\
             fact Emp(ann, sales).\n\
             tgd Emp(X, D) -> Dept(D).\n\
             query Q(X) :- Emp(X, D).\n",
        );
        assert!(bad.is_err(), "promise violated: no Dept(sales)");
        let good = eval_script(
            "mode closed\n\
             fact Emp(ann, sales).\n\
             fact Dept(sales).\n\
             tgd Emp(X, D) -> Dept(D).\n\
             query Q(X) :- Emp(X, D).\n",
        )
        .unwrap();
        assert_eq!(good.answers, vec!["ann"]);
    }

    #[test]
    fn ucq_scripts() {
        let out = eval_script(
            "fact A(x1).\nfact B(x2).\n\
             query Q(X) :- A(X).\nquery Q(X) :- B(X).\n",
        )
        .unwrap();
        assert_eq!(out.answers, vec!["x1", "x2"]);
    }

    #[test]
    fn parse_errors_carry_lines() {
        let e = parse_script("fact Broken(\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_script("nonsense foo\nquery Q(X) :- A(X).").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_script("fact A(x).").unwrap_err();
        assert!(e.message.contains("no query"));
    }

    #[test]
    fn maintain_ops_parse_in_order() {
        let s = parse_script(
            "fact Emp(ann).\n\
             tgd Emp(X) -> WorksIn(X, D).\n\
             +Emp(bob).\n\
             -Emp(ann).  # retract the original\n\
             query Q(X) :- WorksIn(X, D).\n",
        )
        .unwrap();
        assert_eq!(
            s.ops,
            vec![
                MaintOp::Insert(GroundAtom::named("Emp", &["bob"])),
                MaintOp::Retract(GroundAtom::named("Emp", &["ann"])),
            ]
        );
    }

    #[test]
    fn maintained_script_applies_ops_incrementally() {
        let s = parse_script(
            "fact Emp(ann).\n\
             tgd Emp(X) -> WorksIn(X, D).\n\
             tgd WorksIn(X, D) -> Dept(D).\n\
             +Emp(bob).\n\
             -Emp(ann).\n\
             query Q(X) :- WorksIn(X, D), Dept(D).\n",
        )
        .unwrap();
        let out = run_maintained(&s).unwrap();
        assert!(out.exact);
        assert_eq!(
            out.answers,
            vec!["bob"],
            "ann was retracted after bob joined"
        );
        assert_eq!(out.steps.len(), 2);
        assert!(
            out.steps[0].starts_with("+Emp(bob): fired=2"),
            "{}",
            out.steps[0]
        );
        assert!(
            out.steps[1].starts_with("-Emp(ann): overdeleted=3"),
            "{}",
            out.steps[1]
        );
    }

    #[test]
    fn maintain_mode_rejects_closed_world() {
        let s = parse_script("mode closed\nfact A(x).\n+A(y).\nquery Q(X) :- A(X).\n").unwrap();
        assert!(run_maintained(&s).is_err());
    }

    #[test]
    fn zero_ary_facts_and_boolean_queries() {
        let out = eval_script("fact Go().\nquery Q() :- Go().\n").unwrap();
        assert_eq!(out.answers, vec![""]);
        let out = eval_script("fact Stop().\nquery Q() :- Go().\n").unwrap();
        assert!(out.answers.is_empty());
    }
}
