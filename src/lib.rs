//! `gtgd` — facade crate for the guarded-TGD query-evaluation toolkit.
//!
//! Re-exports the public API of every workspace crate so downstream users
//! (and the root-level examples and integration tests) need a single
//! dependency. See the README for a tour and DESIGN.md for the system
//! inventory.

pub mod cli;
pub mod error;
pub mod script;

pub use gtgd_chase as chase;
pub use gtgd_core as omq;
pub use gtgd_data as data;
pub use gtgd_ingest as ingest;
pub use gtgd_query as query;
pub use gtgd_storage as storage;
pub use gtgd_treewidth as treewidth;

pub use error::GtgdError;
