//! Hypergraph acyclicity (GYO reduction) and Yannakakis evaluation for
//! acyclic CQs.
//!
//! Acyclic CQs are the treewidth story's older sibling: α-acyclic queries
//! admit join trees and evaluate in linear time via semijoins. They are a
//! natural companion to the Prop 2.1 engine (every α-acyclic CQ whose atoms
//! have arity ≤ r has "generalized hypertreewidth 1" and, modulo guards,
//! interacts with guarded TGDs exactly as the paper's bags do), and serve as
//! an independent oracle in tests.

use crate::cq::{Cq, QAtom, Var};
use crate::hom::HomSearch;
use gtgd_data::{Instance, Value};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::ops::ControlFlow;

/// A join tree of an α-acyclic CQ: one node per atom, with the
/// connectedness property for shared variables.
#[derive(Debug, Clone)]
pub struct JoinTree {
    /// `parent[i]` is the parent atom index of atom `i` (`None` for the
    /// root(s); forests are chained by Yannakakis).
    pub parent: Vec<Option<usize>>,
    /// Elimination order of atoms discovered by GYO (ears first).
    pub order: Vec<usize>,
}

/// Attempts a GYO reduction of the query's hypergraph. Returns a join tree
/// when the CQ is α-acyclic, `None` otherwise.
pub fn gyo_join_tree(q: &Cq) -> Option<JoinTree> {
    let n = q.atoms.len();
    let mut alive: Vec<bool> = vec![true; n];
    let mut vars: Vec<BTreeSet<Var>> = q
        .atoms
        .iter()
        .map(|a| a.vars().into_iter().collect())
        .collect();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut order: Vec<usize> = Vec::new();
    loop {
        let remaining: Vec<usize> = (0..n).filter(|&i| alive[i]).collect();
        if remaining.len() <= 1 {
            order.extend(remaining);
            return Some(JoinTree { parent, order });
        }
        // An ear: an atom e whose variables are either exclusive to e or all
        // contained in some other live atom w (the witness).
        let mut found = None;
        'ears: for &e in &remaining {
            // Variables shared with any other atom.
            let shared: BTreeSet<Var> = vars[e]
                .iter()
                .copied()
                .filter(|v| remaining.iter().any(|&o| o != e && vars[o].contains(v)))
                .collect();
            if shared.is_empty() {
                found = Some((e, None));
                break 'ears;
            }
            for &w in &remaining {
                if w != e && shared.is_subset(&vars[w]) {
                    found = Some((e, Some(w)));
                    break 'ears;
                }
            }
        }
        match found {
            None => return None, // cyclic
            Some((e, w)) => {
                alive[e] = false;
                parent[e] = w;
                order.push(e);
                // Exclusive variables of e disappear with it.
                vars[e].clear();
            }
        }
    }
}

/// Whether the CQ is α-acyclic.
pub fn is_alpha_acyclic(q: &Cq) -> bool {
    gyo_join_tree(q).is_some()
}

/// Yannakakis evaluation of an α-acyclic CQ: decides `c̄ ∈ q(D)` with a
/// semijoin program over the join tree. Linear in `|D|` per atom.
pub fn check_answer_yannakakis(q: &Cq, i: &Instance, answer: &[Value]) -> Option<bool> {
    assert_eq!(answer.len(), q.arity(), "candidate answer has wrong arity");
    let tree = gyo_join_tree(q)?;
    // Substitute the candidate answer.
    let binding: HashMap<Var, Value> = q
        .answer_vars
        .iter()
        .copied()
        .zip(answer.iter().copied())
        .collect();
    let atoms: Vec<QAtom> = q
        .atoms
        .iter()
        .map(|a| QAtom {
            predicate: a.predicate,
            args: a
                .args
                .iter()
                .map(|t| match *t {
                    crate::cq::Term::Var(v) => match binding.get(&v) {
                        Some(&c) => crate::cq::Term::Const(c),
                        None => crate::cq::Term::Var(v),
                    },
                    c => c,
                })
                .collect(),
        })
        .collect();
    // Per-atom relations (sets of variable assignments restricted to the
    // atom's variables).
    let mut relations: Vec<HashSet<Vec<(Var, Value)>>> = Vec::with_capacity(atoms.len());
    for a in &atoms {
        let mut rel = HashSet::new();
        let vs = a.vars();
        HomSearch::new(std::slice::from_ref(a), i).for_each(|h| {
            rel.insert(vs.iter().map(|&v| (v, h[&v])).collect::<Vec<_>>());
            ControlFlow::Continue(())
        });
        if rel.is_empty() && a.vars().is_empty() {
            // Fully ground atom: present or absent.
            let ground = a.ground(&HashMap::new());
            if i.contains(&ground) {
                rel.insert(Vec::new());
            }
        }
        if rel.is_empty() {
            return Some(false);
        }
        relations.push(rel);
    }
    // Bottom-up semijoins along the GYO elimination order: when atom e is
    // eliminated into witness w, keep only w-tuples consistent with some
    // e-tuple on the shared variables.
    for &e in &tree.order {
        let Some(w) = tree.parent[e] else { continue };
        let shared: Vec<Var> = atoms[e]
            .vars()
            .into_iter()
            .filter(|v| atoms[w].mentions(*v))
            .collect();
        let e_keys: HashSet<Vec<Value>> = relations[e]
            .iter()
            .map(|t| {
                shared
                    .iter()
                    .map(|v| t.iter().find(|(u, _)| u == v).expect("shared var").1)
                    .collect()
            })
            .collect();
        let filtered: HashSet<Vec<(Var, Value)>> = relations[w]
            .iter()
            .filter(|t| {
                let key: Vec<Value> = shared
                    .iter()
                    .map(|v| t.iter().find(|(u, _)| u == v).expect("shared var").1)
                    .collect();
                e_keys.contains(&key)
            })
            .cloned()
            .collect();
        if filtered.is_empty() {
            return Some(false);
        }
        relations[w] = filtered;
    }
    Some(true)
}

/// Full Yannakakis evaluation of an α-acyclic CQ: all answers, via a
/// bottom-up semijoin pass (dangling-tuple elimination) followed by
/// backtracking over the reduced relations. Returns `None` for cyclic
/// queries.
pub fn evaluate_yannakakis(q: &Cq, i: &Instance) -> Option<HashSet<Vec<Value>>> {
    let tree = gyo_join_tree(q)?;
    // Phase 1: per-atom relations.
    let mut relations: Vec<HashSet<Vec<(Var, Value)>>> = Vec::with_capacity(q.atoms.len());
    for a in &q.atoms {
        let mut rel = HashSet::new();
        let vs = a.vars();
        HomSearch::new(std::slice::from_ref(a), i).for_each(|h| {
            rel.insert(vs.iter().map(|&v| (v, h[&v])).collect::<Vec<_>>());
            ControlFlow::Continue(())
        });
        if rel.is_empty() {
            return Some(HashSet::new());
        }
        relations.push(rel);
    }
    // Phase 2: bottom-up semijoins.
    for &e in &tree.order {
        let Some(w) = tree.parent[e] else { continue };
        let shared: Vec<Var> = q.atoms[e]
            .vars()
            .into_iter()
            .filter(|v| q.atoms[w].mentions(*v))
            .collect();
        let e_keys: HashSet<Vec<Value>> = relations[e]
            .iter()
            .map(|t| {
                shared
                    .iter()
                    .map(|v| t.iter().find(|(u, _)| u == v).expect("shared").1)
                    .collect()
            })
            .collect();
        relations[w].retain(|t| {
            let key: Vec<Value> = shared
                .iter()
                .map(|v| t.iter().find(|(u, _)| u == v).expect("shared").1)
                .collect();
            e_keys.contains(&key)
        });
        if relations[w].is_empty() {
            return Some(HashSet::new());
        }
    }
    // Phase 3: enumerate over the reduced sub-instance. (Dangling tuples
    // are gone, so backtracking on the reduced data does no wasted work in
    // the acyclic case.)
    let reduced: Instance = relations
        .iter()
        .zip(q.atoms.iter())
        .flat_map(|(rel, atom)| {
            rel.iter()
                .map(move |t| atom.ground(&t.iter().copied().collect::<HashMap<Var, Value>>()))
        })
        .collect();
    Some(crate::eval::evaluate_cq(q, &reduced))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::check_answer;
    use crate::parser::parse_cq;
    use gtgd_data::GroundAtom;

    fn db(atoms: &[(&str, &[&str])]) -> Instance {
        Instance::from_atoms(atoms.iter().map(|(p, args)| GroundAtom::named(p, args)))
    }

    #[test]
    fn paths_and_stars_are_acyclic() {
        assert!(is_alpha_acyclic(
            &parse_cq("Q() :- E(X,Y), E(Y,Z), E(Z,W)").unwrap()
        ));
        assert!(is_alpha_acyclic(
            &parse_cq("Q() :- E(X,A), E(X,B), E(X,C)").unwrap()
        ));
    }

    #[test]
    fn triangle_is_cyclic_but_guarded_triangle_is_acyclic() {
        assert!(!is_alpha_acyclic(
            &parse_cq("Q() :- E(X,Y), E(Y,Z), E(Z,X)").unwrap()
        ));
        // With a guard atom covering all three, GYO succeeds (α-acyclicity
        // is not closed under subqueries — the classic example).
        assert!(is_alpha_acyclic(
            &parse_cq("Q() :- E(X,Y), E(Y,Z), E(Z,X), T(X,Y,Z)").unwrap()
        ));
    }

    #[test]
    fn yannakakis_agrees_with_backtracking() {
        let d = db(&[
            ("E", &["a", "b"]),
            ("E", &["b", "c"]),
            ("E", &["c", "a"]),
            ("P", &["b"]),
        ]);
        let q = parse_cq("Q(X) :- E(X,Y), P(Y)").unwrap();
        for v in ["a", "b", "c"] {
            let cand = vec![Value::named(v)];
            assert_eq!(
                check_answer_yannakakis(&q, &d, &cand),
                Some(check_answer(&q, &d, &cand)),
                "candidate {v}"
            );
        }
    }

    #[test]
    fn cyclic_queries_report_none() {
        let q = parse_cq("Q() :- E(X,Y), E(Y,Z), E(Z,X)").unwrap();
        assert_eq!(check_answer_yannakakis(&q, &Instance::new(), &[]), None);
    }

    #[test]
    fn semijoin_prunes_dangling_tuples() {
        // E(a,b) dangles: b has no P. Yannakakis must reject.
        let d = db(&[("E", &["a", "b"])]);
        let q = parse_cq("Q() :- E(X,Y), P(Y)").unwrap();
        assert_eq!(check_answer_yannakakis(&q, &d, &[]), Some(false));
    }

    #[test]
    fn disconnected_acyclic_query() {
        let d = db(&[("A", &["x"]), ("B", &["y"])]);
        let q = parse_cq("Q() :- A(U), B(V)").unwrap();
        assert_eq!(check_answer_yannakakis(&q, &d, &[]), Some(true));
        let d2 = db(&[("A", &["x"])]);
        assert_eq!(check_answer_yannakakis(&q, &d2, &[]), Some(false));
    }

    #[test]
    fn full_evaluation_matches_backtracking() {
        let d = db(&[
            ("E", &["a", "b"]),
            ("E", &["b", "c"]),
            ("E", &["c", "d"]),
            ("P", &["b"]),
            ("P", &["d"]),
        ]);
        let q = parse_cq("Q(X,Y) :- E(X,Y), P(Y)").unwrap();
        let yan = evaluate_yannakakis(&q, &d).expect("acyclic");
        let bt = crate::eval::evaluate_cq(&q, &d);
        assert_eq!(yan, bt);
        assert_eq!(yan.len(), 2);
    }

    #[test]
    fn full_evaluation_empty_when_no_match() {
        let d = db(&[("E", &["a", "b"])]);
        let q = parse_cq("Q(X) :- E(X,Y), P(Y)").unwrap();
        assert_eq!(evaluate_yannakakis(&q, &d), Some(HashSet::new()));
    }

    #[test]
    fn exhaustive_agreement_on_random_grid() {
        let mut atoms = Vec::new();
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    atoms.push(("H", vec![format!("g{r}{c}"), format!("g{r}{}", c + 1)]));
                }
                if r + 1 < 3 {
                    atoms.push(("V", vec![format!("g{r}{c}"), format!("g{}{c}", r + 1)]));
                }
            }
        }
        let d = Instance::from_atoms(atoms.iter().map(|(p, args)| {
            GroundAtom::named(p, &args.iter().map(String::as_str).collect::<Vec<_>>())
        }));
        let q = parse_cq("Q(X) :- H(X,Y), V(Y,Z)").unwrap();
        for v in d.dom().to_vec() {
            assert_eq!(
                check_answer_yannakakis(&q, &d, &[v]),
                Some(check_answer(&q, &d, &[v]))
            );
        }
    }
}
