//! Process-wide string interning for predicate and constant names.
//!
//! Interning keeps atoms compact (`u32` ids instead of strings) and makes
//! equality and hashing O(1), which matters in the homomorphism-search and
//! chase inner loops. The table only grows; ids are stable for the lifetime
//! of the process.

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// An interned string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<String>,
    ids: HashMap<String, u32>,
}

fn table() -> &'static RwLock<Interner> {
    static TABLE: OnceLock<RwLock<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            ids: HashMap::new(),
        })
    })
}

impl Symbol {
    /// Interns `name`, returning its stable id.
    pub fn new(name: &str) -> Symbol {
        {
            let t = table().read().expect("interner poisoned");
            if let Some(&id) = t.ids.get(name) {
                return Symbol(id);
            }
        }
        let mut t = table().write().expect("interner poisoned");
        if let Some(&id) = t.ids.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(t.names.len()).expect("interner overflow");
        t.names.push(name.to_owned());
        t.ids.insert(name.to_owned(), id);
        Symbol(id)
    }

    /// The interned string.
    pub fn name(self) -> String {
        table().read().expect("interner poisoned").names[self.0 as usize].clone()
    }

    /// Raw id; useful only as a hash/sort key.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("R");
        let b = Symbol::new("R");
        assert_eq!(a, b);
        assert_eq!(a.name(), "R");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(Symbol::new("alpha"), Symbol::new("beta"));
    }

    #[test]
    fn display_roundtrips() {
        let s = Symbol::new("Employee");
        assert_eq!(s.to_string(), "Employee");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::new("shared-name").id()))
            .collect();
        let ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn concurrent_interning_hammer_many_names_many_threads() {
        // 16 threads race to intern the same 200 names, every thread in a
        // different order, interleaved with reads. All threads must agree on
        // every id, ids must be distinct per name, and the id → name lookup
        // must round-trip. This exercises the read-then-upgrade race in
        // `Symbol::new`: two threads can both miss the read lock and reach
        // the write path for the same name.
        const THREADS: usize = 16;
        const NAMES: usize = 200;
        let maps: Vec<Vec<(String, u32)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    scope.spawn(move || {
                        (0..NAMES)
                            .map(|i| {
                                // Per-thread visit order: stride through the
                                // name space so write races actually overlap.
                                let i = (i * (t + 1) + t) % NAMES;
                                let name = format!("hammer-{i}");
                                let sym = Symbol::new(&name);
                                assert_eq!(sym.name(), name, "lookup must round-trip");
                                (name, sym.id())
                            })
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut agreed: HashMap<String, u32> = HashMap::new();
        for per_thread in &maps {
            for (name, id) in per_thread {
                match agreed.get(name) {
                    Some(&prev) => assert_eq!(prev, *id, "threads disagree on {name}"),
                    None => {
                        agreed.insert(name.clone(), *id);
                    }
                }
            }
        }
        assert_eq!(agreed.len(), NAMES);
        let distinct: std::collections::HashSet<u32> = agreed.values().copied().collect();
        assert_eq!(distinct.len(), NAMES, "ids must be distinct per name");
        // Ids are stable: re-interning after the race returns the same ids.
        for (name, id) in &agreed {
            assert_eq!(Symbol::new(name).id(), *id);
        }
    }
}
