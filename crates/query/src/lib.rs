#![warn(missing_docs)]

//! Conjunctive queries and unions of conjunctive queries (Section 2 of the
//! paper): representation, parsing, the homomorphism engine, evaluation
//! (generic backtracking and the bounded-treewidth algorithm of Prop 2.1),
//! cores, contractions, specializations, and classical containment.
//!
//! ```
//! use gtgd_query::{parse_cq, evaluate_cq, cq_semantic_treewidth};
//! use gtgd_data::{GroundAtom, Instance};
//!
//! let db = Instance::from_atoms([
//!     GroundAtom::named("E", &["a", "b"]),
//!     GroundAtom::named("E", &["b", "c"]),
//! ]);
//! let q = parse_cq("Q(X) :- E(X,Y), E(Y,Z)")?;
//! assert_eq!(evaluate_cq(&q, &db).len(), 1); // only a reaches 2 steps
//! assert_eq!(cq_semantic_treewidth(&q), 1);
//! # Ok::<(), gtgd_query::ParseError>(())
//! ```

pub mod acyclic;
pub mod compile;
pub mod containment;
pub mod contract;
pub mod cq;
pub mod cq_core;
pub mod decomp_eval;
pub mod engine;
pub mod eval;
pub mod hom;
pub mod iso;
pub mod parser;
pub mod plan_cache;
pub mod semantic;
pub mod tw;
mod wcoj;

pub use acyclic::{
    check_answer_yannakakis, evaluate_yannakakis, gyo_join_tree, is_alpha_acyclic, JoinTree,
};
pub use compile::{CTerm, CompiledQuery, KernelSearch, Repr, Strategy, ValuationTable};
pub use containment::{cq_contained, cq_equivalent, ucq_contained, ucq_equivalent};
pub use contract::{
    contractions, injective_contraction, merge_vars, specializations, Specialization,
};
pub use cq::{Cq, QAtom, Term, Ucq, Var};
pub use cq_core::core_of;
pub use decomp_eval::check_answer_decomposed;
pub use engine::{AnswerWitness, Engine, PreparedQuery, QueryOutcome};
pub use eval::{
    check_answer, evaluate_cq, evaluate_cq_par, evaluate_ucq, holds_boolean, ucq_holds_boolean,
};
pub use hom::{
    all_homomorphisms, exists_homomorphism, find_homomorphism, instance_homomorphism,
    instance_homomorphism_fixing, HomSearch,
};
pub use iso::{cq_isomorphic, dedup_isomorphic, instance_isomorphic};
pub use parser::{parse_cq, parse_ucq, ParseError};
pub use plan_cache::{normalize_query_text, PlanCache};
pub use semantic::{
    cq_semantic_treewidth, is_cq_semantically_at_most, is_ucq_semantically_at_most,
    ucq_semantic_rewriting,
};
pub use tw::{cq_gaifman, cq_treewidth, existential_gaifman, ucq_treewidth};
