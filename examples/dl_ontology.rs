//! A description-logic front door: ELHI⊥ TBoxes are guarded TGDs
//! (the paper's Section 1 contrast with the DL-based characterizations of
//! Barceló–Feier–Lutz–Pieris LICS'19), so the whole guarded toolkit applies.
//!
//! Run with: `cargo run --example dl_ontology`

use gtgd::chase::dl::parse_dl_ontology;
use gtgd::chase::TgdClass;
use gtgd::data::{GroundAtom, Instance};
use gtgd::omq::{evaluate_omq, EvalConfig, Omq};
use gtgd::query::parse_ucq;

fn main() {
    // A university TBox in ELHI⊥.
    let tbox = "\
        Prof < exists teaches. Course\n\
        GradStudent < exists enrolledIn. Course\n\
        exists teaches. Course < Teacher\n\
        exists inv teaches. top < Taught\n\
        role teaches < involvedWith\n\
        Prof & GradStudent < bot";
    let sigma = parse_dl_ontology(tbox).expect("TBox parses");
    println!("TBox translated to {} TGDs:", sigma.len());
    for t in &sigma {
        assert!(t.is_in(TgdClass::Guarded), "ELHI⊥ ⊆ G");
        println!("  {t}");
    }

    // An ABox.
    let abox = Instance::from_atoms([
        GroundAtom::named("Prof", &["ada"]),
        GroundAtom::named("GradStudent", &["grace"]),
        GroundAtom::named("teaches", &["grace", "cs101"]),
    ]);

    // Certain answers: who is a Teacher? ada (via an invented course) and
    // grace (via the explicit teaching fact + ∃teaches.Course ⊑ Teacher —
    // but cs101 is not asserted to be a Course, so only ada qualifies).
    let omq = Omq::full_schema(sigma.clone(), parse_ucq("Q(X) :- Teacher(X)").unwrap());
    let out = evaluate_omq(&omq, &abox, &EvalConfig::default());
    assert!(out.exact);
    let mut teachers: Vec<String> = out.answers.iter().map(|t| t[0].to_string()).collect();
    teachers.sort();
    println!("certain Teachers: {teachers:?}");
    assert_eq!(teachers, vec!["ada"]);

    // Role hierarchy: involvedWith is entailed from teaches.
    let omq2 = Omq::full_schema(
        sigma.clone(),
        parse_ucq("Q(X,Y) :- involvedWith(X,Y)").unwrap(),
    );
    let out2 = evaluate_omq(&omq2, &abox, &EvalConfig::default());
    println!("certain involvedWith pairs: {}", out2.answers.len());
    assert_eq!(out2.answers.len(), 1); // (grace, cs101)

    // Consistency: nothing is both Prof and GradStudent here.
    let omq3 = Omq::full_schema(sigma, parse_ucq("Q(X) :- __Bot(X)").unwrap());
    let out3 = evaluate_omq(&omq3, &abox, &EvalConfig::default());
    println!("inconsistency markers: {}", out3.answers.len());
    assert!(out3.answers.is_empty());
}
