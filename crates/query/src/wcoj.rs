//! Worst-case-optimal join execution: leapfrog triejoin over the columnar
//! sorted-trie indexes of `gtgd-data`.
//!
//! The backtracking kernel ([`crate::compile::KernelSearch`]) matches one
//! *atom* at a time; on cyclic bodies (triangles, cliques — the paper's
//! hardness core, Thms 5.4/5.13) its intermediate candidate sets can exceed
//! the AGM fractional-cover bound by polynomial factors. This module binds
//! one *variable* at a time instead: every atom containing the current
//! variable exposes a sorted trie iterator over its
//! [`gtgd_data::SortedPermutation`] index, and a leapfrog intersection
//! enumerates exactly the values present in *all* of them. The total work
//! is within the worst-case-optimal bound for the chosen variable order.
//!
//! Three pieces live here:
//!
//! * [`build_plan`] — the planner: a global variable (slot) order — seeded
//!   guard-first from the widest atom, grown connected-first, degree then
//!   min-slot tie-breaks — plus, per atom, the trie level layout (which
//!   column is keyed by which depth, constants first).
//! * [`prefers_wcoj`] — the gate: slot-level GYO acyclicity test plus a
//!   high-arity multiway-join trigger. Acyclic low-join queries keep the
//!   backtracker (it wins on paths and stars with selective constants).
//! * [`WcojRun`] — the executor: trie cursors with `open`/`seek`/`next`/
//!   `up` over sorted permutations, recursing over the variable order.
//!   Semantics (fixed slots, injectivity, image restriction, skipped
//!   atoms) mirror the backtracker exactly; `tests/differential_wcoj.rs`
//!   proves answer-set equality.

use crate::compile::{CAtom, CTerm};
use gtgd_data::{obs, Instance, SortedPermutation, Value};
use std::collections::HashSet;
use std::ops::ControlFlow;
use std::sync::Arc;

/// What keys one trie level of one atom: an inline constant (descended
/// before any variable is bound) or the variable bound at a global depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LevelKey {
    /// The level's column holds this constant on every matching row.
    Const(Value),
    /// The level's column is keyed by the slot bound at this depth of the
    /// global variable order.
    Depth(u32),
}

/// One atom's trie layout: the column order its sorted index is requested
/// in, and what keys each level.
#[derive(Debug, Clone)]
pub(crate) struct AtomPlan {
    pub(crate) predicate: gtgd_data::Predicate,
    pub(crate) arity: usize,
    /// Term positions in trie-level order: constants first, then positions
    /// in increasing depth of their slot (position order within a depth).
    pub(crate) col_order: Vec<u16>,
    /// Aligned with `col_order`.
    pub(crate) keys: Vec<LevelKey>,
}

/// A compiled worst-case-optimal execution plan: the global variable order
/// plus per-atom trie layouts. Built once per [`crate::CompiledQuery`].
#[derive(Debug, Clone)]
pub(crate) struct WcojPlan {
    /// `order[d]` is the slot bound at depth `d`. Slots that occur in no
    /// atom (ghost slots) come last.
    pub(crate) order: Vec<u32>,
    /// One plan per compiled atom (same indexing).
    pub(crate) atoms: Vec<AtomPlan>,
}

/// Distinct slots of an atom, in first-occurrence order.
fn atom_slots(a: &CAtom) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::new();
    for t in &a.terms {
        if let CTerm::Slot(s) = *t {
            if !out.contains(&s) {
                out.push(s);
            }
        }
    }
    out
}

/// Slot-level GYO reduction: `true` iff the hypergraph whose edges are the
/// atoms' slot sets is α-acyclic. (The query-level test in
/// [`crate::acyclic`] works on `Cq`/`Var`; this one runs at compile time
/// on interned slots.)
fn slots_acyclic(atoms: &[CAtom], slot_count: usize) -> bool {
    let mut edges: Vec<Vec<u32>> = atoms
        .iter()
        .map(|a| {
            let mut s = atom_slots(a);
            s.sort_unstable();
            s
        })
        .filter(|s| !s.is_empty())
        .collect();
    edges.sort();
    edges.dedup();
    loop {
        let mut changed = false;
        // Ear rule 1: drop vertices occurring in at most one edge.
        let mut occurs = vec![0usize; slot_count];
        for e in &edges {
            for &s in e {
                occurs[s as usize] += 1;
            }
        }
        for e in &mut edges {
            let before = e.len();
            e.retain(|&s| occurs[s as usize] > 1);
            changed |= e.len() != before;
        }
        // Ear rule 2: drop edges contained in another edge (and empties).
        let snapshot = edges.clone();
        let before = edges.len();
        edges.retain(|e| {
            !e.is_empty()
                && !snapshot
                    .iter()
                    .any(|f| f.len() > e.len() && e.iter().all(|s| f.contains(s)))
        });
        edges.sort();
        edges.dedup();
        changed |= edges.len() != before;
        if !changed {
            return edges.is_empty();
        }
    }
}

/// The planner gate: worst-case-optimal execution pays off on cyclic
/// bodies (its raison d'être) and on high-arity multiway joins where one
/// variable is shared by three or more atoms. Everything else — paths,
/// low-join lookups, E12's acyclic workloads — keeps the backtracker.
pub(crate) fn prefers_wcoj(atoms: &[CAtom], slot_count: usize) -> bool {
    if atoms.len() < 2 {
        return false;
    }
    if !slots_acyclic(atoms, slot_count) {
        return true;
    }
    if atoms.len() < 3 {
        return false;
    }
    let mut degree = vec![0usize; slot_count];
    for a in atoms {
        for s in atom_slots(a) {
            degree[s as usize] += 1;
        }
    }
    degree.iter().any(|&d| d >= 3)
}

/// Chooses the global variable order and builds per-atom trie layouts.
///
/// Order heuristic: seed with the *guard* — the atom with the most
/// distinct slots (widest scheme; in guarded bodies this is the guard
/// atom) — then repeatedly append the unordered slot sharing an atom with
/// an already-ordered slot (connectedness), preferring highest degree
/// (most atoms constrain it), breaking ties by smallest slot. Ghost slots
/// (interned but absent from every atom) are appended last.
pub(crate) fn build_plan(atoms: &[CAtom], slot_count: usize) -> WcojPlan {
    let slots_per_atom: Vec<Vec<u32>> = atoms.iter().map(atom_slots).collect();
    let mut degree = vec![0usize; slot_count];
    let mut occurring = vec![false; slot_count];
    for sa in &slots_per_atom {
        for &s in sa {
            degree[s as usize] += 1;
            occurring[s as usize] = true;
        }
    }
    let total_occurring = occurring.iter().filter(|&&b| b).count();
    let mut chosen = vec![false; slot_count];
    let mut order: Vec<u32> = Vec::with_capacity(slot_count);
    while order.len() < total_occurring {
        // Connected candidates: unchosen slots sharing an atom with a
        // chosen slot.
        let mut cands: Vec<u32> = Vec::new();
        for sa in &slots_per_atom {
            if sa.iter().any(|&s| chosen[s as usize]) {
                for &s in sa {
                    if !chosen[s as usize] && !cands.contains(&s) {
                        cands.push(s);
                    }
                }
            }
        }
        if cands.is_empty() {
            // New component: guard-first — the widest atom with any
            // unchosen slot seeds the candidates.
            let guard = slots_per_atom
                .iter()
                .enumerate()
                .filter(|(_, sa)| sa.iter().any(|&s| !chosen[s as usize]))
                .max_by_key(|(i, sa)| (sa.len(), std::cmp::Reverse(*i)))
                .map(|(i, _)| i)
                .expect("unchosen occurring slot implies a candidate atom");
            cands = slots_per_atom[guard]
                .iter()
                .copied()
                .filter(|&s| !chosen[s as usize])
                .collect();
        }
        let best = cands
            .into_iter()
            .min_by_key(|&s| (std::cmp::Reverse(degree[s as usize]), s))
            .expect("candidates nonempty");
        chosen[best as usize] = true;
        order.push(best);
    }
    for s in 0..slot_count as u32 {
        if !chosen[s as usize] {
            order.push(s);
        }
    }
    let mut depth_of = vec![u32::MAX; slot_count];
    for (d, &s) in order.iter().enumerate() {
        depth_of[s as usize] = d as u32;
    }
    let atom_plans = atoms
        .iter()
        .map(|a| {
            // (turn, position) sort: constants (turn −1) descend at init,
            // then levels in depth order; within one depth, term-position
            // order (the first is the intersection's primary, the rest are
            // repeated-variable checks).
            let mut levels: Vec<(i64, u16, LevelKey)> = a
                .terms
                .iter()
                .enumerate()
                .map(|(pos, t)| {
                    let pos = u16::try_from(pos).expect("arity fits u16");
                    match *t {
                        CTerm::Const(c) => (-1i64, pos, LevelKey::Const(c)),
                        CTerm::Slot(s) => {
                            let d = depth_of[s as usize];
                            (d as i64, pos, LevelKey::Depth(d))
                        }
                    }
                })
                .collect();
            levels.sort_by_key(|&(turn, pos, _)| (turn, pos));
            AtomPlan {
                predicate: a.predicate,
                arity: a.terms.len(),
                col_order: levels.iter().map(|&(_, pos, _)| pos).collect(),
                keys: levels.iter().map(|&(_, _, k)| k).collect(),
            }
        })
        .collect();
    WcojPlan {
        order,
        atoms: atom_plans,
    }
}

/// One open trie level: the row range matching all ancestor keys (`hi`
/// bounds it; its start is implicit in `pos` history) and the current key
/// group `[pos, end)`.
#[derive(Debug, Clone, Copy)]
struct Frame {
    hi: usize,
    pos: usize,
    end: usize,
}

/// A trie iterator over one atom's sorted permutation index. Level `ℓ`
/// keys rows by column `col_order[ℓ]`; `open` narrows to the parent's
/// current key group, `seek`/`next` move between key groups by galloping
/// search.
struct Cursor<'a> {
    perm: Arc<SortedPermutation>,
    /// Per level, the arena column it keys on.
    cols: Vec<&'a [Value]>,
    rows: usize,
    stack: Vec<Frame>,
}

impl<'a> Cursor<'a> {
    fn new(target: &'a Instance, plan: &AtomPlan) -> Cursor<'a> {
        let pc = target.columns(plan.predicate, plan.arity);
        let rows = pc.map_or(0, |c| c.rows());
        let cols: Vec<&'a [Value]> = plan
            .col_order
            .iter()
            .map(|&j| pc.map_or(&[] as &[Value], |c| c.col(j as usize)))
            .collect();
        let perm = target.sorted_permutation(plan.predicate, plan.arity, &plan.col_order);
        Cursor {
            perm,
            cols,
            rows,
            stack: Vec::new(),
        }
    }

    #[inline]
    fn key_at(&self, level: usize, i: usize) -> Value {
        self.cols[level][self.perm.perm()[i] as usize]
    }

    /// First index in `[lo, hi)` whose key at `level` is `>= v` (gallop +
    /// binary search; `O(log gap)` for short seeks).
    fn lower_bound(&self, level: usize, lo: usize, hi: usize, v: Value) -> usize {
        if lo >= hi || self.key_at(level, lo) >= v {
            return lo;
        }
        // Invariant: key_at(base) < v.
        let mut base = lo;
        let mut step = 1usize;
        let mut steps = 0u64;
        while base + step < hi && self.key_at(level, base + step) < v {
            base += step;
            step <<= 1;
            steps += 1;
        }
        let mut l = base + 1;
        let mut h = (base + step).min(hi);
        while l < h {
            let mid = l + (h - l) / 2;
            if self.key_at(level, mid) < v {
                l = mid + 1;
            } else {
                h = mid;
            }
            steps += 1;
        }
        obs::count(obs::Metric::WcojGallopSteps, steps);
        l
    }

    /// First index in `[lo, hi)` whose key at `level` is `> v`.
    fn upper_bound(&self, level: usize, lo: usize, hi: usize, v: Value) -> usize {
        if lo >= hi || self.key_at(level, lo) > v {
            return lo;
        }
        let mut base = lo;
        let mut step = 1usize;
        let mut steps = 0u64;
        while base + step < hi && self.key_at(level, base + step) <= v {
            base += step;
            step <<= 1;
            steps += 1;
        }
        let mut l = base + 1;
        let mut h = (base + step).min(hi);
        while l < h {
            let mid = l + (h - l) / 2;
            if self.key_at(level, mid) <= v {
                l = mid + 1;
            } else {
                h = mid;
            }
            steps += 1;
        }
        obs::count(obs::Metric::WcojGallopSteps, steps);
        l
    }

    /// Descends into the current key group of the top level (or the whole
    /// relation at the root), positioned at its first key.
    fn open(&mut self) {
        let (lo, hi) = match self.stack.last() {
            None => (0, self.rows),
            Some(f) => (f.pos, f.end),
        };
        let level = self.stack.len();
        let end = if lo < hi {
            let k = self.key_at(level, lo);
            self.upper_bound(level, lo + 1, hi, k)
        } else {
            lo
        };
        self.stack.push(Frame { hi, pos: lo, end });
    }

    fn up(&mut self) {
        self.stack.pop();
    }

    #[inline]
    fn at_end(&self) -> bool {
        let f = self.stack.last().expect("cursor is open");
        f.pos >= f.hi
    }

    #[inline]
    fn key(&self) -> Value {
        let f = self.stack.last().expect("cursor is open");
        self.key_at(self.stack.len() - 1, f.pos)
    }

    /// Advances to the next distinct key at the current level.
    fn next(&mut self) {
        let level = self.stack.len() - 1;
        let (pos, hi) = {
            let f = self.stack.last_mut().expect("cursor is open");
            f.pos = f.end;
            (f.pos, f.hi)
        };
        if pos < hi {
            let k = self.key_at(level, pos);
            let end = self.upper_bound(level, pos + 1, hi, k);
            self.stack.last_mut().expect("cursor is open").end = end;
        }
    }

    /// Positions at the first key `>= v` (keys only move forward).
    fn seek(&mut self, v: Value) {
        obs::count(obs::Metric::WcojSeeks, 1);
        let level = self.stack.len() - 1;
        let f = *self.stack.last().expect("cursor is open");
        if f.pos < f.hi && self.key_at(level, f.pos) >= v {
            return;
        }
        let pos = self.lower_bound(level, f.pos, f.hi, v);
        let end = if pos < f.hi {
            let k = self.key_at(level, pos);
            self.upper_bound(level, pos + 1, f.hi, k)
        } else {
            pos
        };
        let f = self.stack.last_mut().expect("cursor is open");
        f.pos = pos;
        f.end = end;
    }
}

/// One atom's executor state: its cursor plus a pointer to the next trie
/// level to descend.
struct RunAtom<'a> {
    cursor: Cursor<'a>,
    keys: &'a [LevelKey],
    ptr: usize,
}

/// A running worst-case-optimal search: the recursion over the global
/// variable order. Constructed per enumeration by the kernel
/// ([`crate::compile::KernelSearch`] routes here when the strategy gate
/// picks WCOJ).
pub(crate) struct WcojRun<'a> {
    order: &'a [u32],
    atoms: Vec<RunAtom<'a>>,
    injective: bool,
    allowed: Option<&'a HashSet<Value>>,
    val: Vec<Option<Value>>,
    used: HashSet<Value>,
    row: Vec<Value>,
}

impl<'a> WcojRun<'a> {
    /// Builds cursors for every non-skipped atom and descends their
    /// constant trie prefixes. `None` means the search provably has no
    /// answers (an empty relation, or a constant absent from its column).
    pub(crate) fn new(
        wplan: &'a WcojPlan,
        target: &'a Instance,
        val: Vec<Option<Value>>,
        used: HashSet<Value>,
        injective: bool,
        allowed: Option<&'a HashSet<Value>>,
        skip: Option<usize>,
    ) -> Option<WcojRun<'a>> {
        let n = val.len();
        let mut atoms: Vec<RunAtom<'a>> = Vec::with_capacity(wplan.atoms.len());
        for (i, ap) in wplan.atoms.iter().enumerate() {
            if Some(i) == skip {
                continue;
            }
            let cursor = Cursor::new(target, ap);
            if cursor.rows == 0 {
                return None;
            }
            atoms.push(RunAtom {
                cursor,
                keys: &ap.keys,
                ptr: 0,
            });
        }
        let mut run = WcojRun {
            order: &wplan.order,
            atoms,
            injective,
            allowed,
            val,
            used,
            row: vec![Value::named("?"); n],
        };
        for ai in 0..run.atoms.len() {
            while let Some(LevelKey::Const(c)) = run.next_key(ai) {
                if !run.open_seek(ai, c) {
                    return None;
                }
            }
        }
        Some(run)
    }

    #[inline]
    fn next_key(&self, ai: usize) -> Option<LevelKey> {
        let a = &self.atoms[ai];
        a.keys.get(a.ptr).copied()
    }

    #[inline]
    fn next_is_depth(&self, ai: usize, d: usize) -> bool {
        self.next_key(ai) == Some(LevelKey::Depth(d as u32))
    }

    /// Opens atom `ai`'s next trie level and seeks `x`; `true` iff the
    /// level contains `x`. The level stays open either way (the caller
    /// unwinds with [`WcojRun::close`]).
    fn open_seek(&mut self, ai: usize, x: Value) -> bool {
        let a = &mut self.atoms[ai];
        a.cursor.open();
        a.ptr += 1;
        a.cursor.seek(x);
        !a.cursor.at_end() && a.cursor.key() == x
    }

    fn close(&mut self, ai: usize) {
        let a = &mut self.atoms[ai];
        a.cursor.up();
        a.ptr -= 1;
    }

    /// Runs the search, invoking `f` per answer row (slot order).
    pub(crate) fn run(
        &mut self,
        f: &mut impl FnMut(&[Value]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        self.rec(0, f)
    }

    fn rec(
        &mut self,
        d: usize,
        f: &mut impl FnMut(&[Value]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if d == self.order.len() {
            for (i, v) in self.val.iter().enumerate() {
                self.row[i] = v.expect("every slot is bound at a full match");
            }
            return f(&self.row);
        }
        let s = self.order[d] as usize;
        if let Some(x) = self.val[s] {
            // Pre-bound (fixed or a parallel split seed): every level keyed
            // by this depth must contain x.
            let mut opened: Vec<usize> = Vec::new();
            let mut ok = true;
            'atoms: for ai in 0..self.atoms.len() {
                while self.next_is_depth(ai, d) {
                    let hit = self.open_seek(ai, x);
                    opened.push(ai);
                    if !hit {
                        ok = false;
                        break 'atoms;
                    }
                }
            }
            let r = if ok {
                self.rec(d + 1, f)
            } else {
                ControlFlow::Continue(())
            };
            for &ai in opened.iter().rev() {
                self.close(ai);
            }
            return r;
        }
        let parts: Vec<usize> = (0..self.atoms.len())
            .filter(|&ai| self.next_is_depth(ai, d))
            .collect();
        if parts.is_empty() {
            // No atom constrains this slot. The backtracker leaves such a
            // slot unbound too (and the emit `expect` fires on both paths
            // if it is ever reached without a fixed binding).
            return self.rec(d + 1, f);
        }
        for &ai in &parts {
            let a = &mut self.atoms[ai];
            a.cursor.open();
            a.ptr += 1;
        }
        let r = self.leapfrog(d, s, &parts, f);
        for &ai in parts.iter().rev() {
            self.close(ai);
        }
        r
    }

    /// The multiway intersection at depth `d`: every participant cursor is
    /// freshly opened on its keying level; enumerate common keys in
    /// ascending order.
    fn leapfrog(
        &mut self,
        d: usize,
        s: usize,
        parts: &[usize],
        f: &mut impl FnMut(&[Value]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        'outer: loop {
            if self.atoms[parts[0]].cursor.at_end() {
                break;
            }
            let mut x = self.atoms[parts[0]].cursor.key();
            // Align all participants on x, raising x past gaps.
            loop {
                let mut moved = false;
                for &ai in parts {
                    let c = &mut self.atoms[ai].cursor;
                    if c.at_end() {
                        break 'outer;
                    }
                    let k = c.key();
                    if k < x {
                        c.seek(x);
                        if c.at_end() {
                            break 'outer;
                        }
                        if c.key() > x {
                            x = c.key();
                            moved = true;
                        }
                    } else if k > x {
                        x = k;
                        moved = true;
                    }
                }
                if !moved {
                    break;
                }
            }
            if self.try_value(d, s, x, parts, f).is_break() {
                return ControlFlow::Break(());
            }
            let c = &mut self.atoms[parts[0]].cursor;
            c.next();
            if c.at_end() {
                break;
            }
        }
        ControlFlow::Continue(())
    }

    /// Binds `x` at depth `d` (mode checks, repeated-variable levels) and
    /// recurses.
    fn try_value(
        &mut self,
        d: usize,
        s: usize,
        x: Value,
        parts: &[usize],
        f: &mut impl FnMut(&[Value]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if self.injective && self.used.contains(&x) {
            return ControlFlow::Continue(());
        }
        if let Some(allowed) = self.allowed {
            if !allowed.contains(&x) {
                return ControlFlow::Continue(());
            }
        }
        // Repeated variables: further levels of the same atom keyed by this
        // depth must also contain x.
        let mut opened: Vec<usize> = Vec::new();
        let mut ok = true;
        'atoms: for &ai in parts {
            while self.next_is_depth(ai, d) {
                let hit = self.open_seek(ai, x);
                opened.push(ai);
                if !hit {
                    ok = false;
                    break 'atoms;
                }
            }
        }
        let r = if ok {
            self.val[s] = Some(x);
            if self.injective {
                self.used.insert(x);
            }
            let r = self.rec(d + 1, f);
            self.val[s] = None;
            if self.injective {
                self.used.remove(&x);
            }
            r
        } else {
            ControlFlow::Continue(())
        };
        for &ai in opened.iter().rev() {
            self.close(ai);
        }
        r
    }

    /// The candidate values of the *first* (depth-0) variable: the leapfrog
    /// intersection at the trie roots, in ascending order. Used by the
    /// parallel split — each value seeds an independent sub-search, and
    /// distinct values yield disjoint row sets (no deduplication needed).
    pub(crate) fn root_candidates(&mut self) -> Vec<Value> {
        let mut out: Vec<Value> = Vec::new();
        if self.order.is_empty() {
            return out;
        }
        let d = 0usize;
        let parts: Vec<usize> = (0..self.atoms.len())
            .filter(|&ai| self.next_is_depth(ai, d))
            .collect();
        if parts.is_empty() {
            return out;
        }
        for &ai in &parts {
            let a = &mut self.atoms[ai];
            a.cursor.open();
            a.ptr += 1;
        }
        'outer: loop {
            if self.atoms[parts[0]].cursor.at_end() {
                break;
            }
            let mut x = self.atoms[parts[0]].cursor.key();
            loop {
                let mut moved = false;
                for &ai in &parts {
                    let c = &mut self.atoms[ai].cursor;
                    if c.at_end() {
                        break 'outer;
                    }
                    let k = c.key();
                    if k < x {
                        c.seek(x);
                        if c.at_end() {
                            break 'outer;
                        }
                        if c.key() > x {
                            x = c.key();
                            moved = true;
                        }
                    } else if k > x {
                        x = k;
                        moved = true;
                    }
                }
                if !moved {
                    break;
                }
            }
            out.push(x);
            let c = &mut self.atoms[parts[0]].cursor;
            c.next();
            if c.at_end() {
                break;
            }
        }
        for &ai in parts.iter().rev() {
            self.close(ai);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::compile::{CompiledQuery, Strategy};
    use crate::parser::parse_cq;
    use gtgd_data::{GroundAtom, Instance, Value};
    use std::collections::HashSet;

    fn v(s: &str) -> Value {
        Value::named(s)
    }

    fn tri_db() -> Instance {
        // A triangle a-b-c plus a dangling path d-e (both edge directions).
        let mut atoms = Vec::new();
        for (x, y) in [("a", "b"), ("b", "c"), ("c", "a"), ("d", "e")] {
            atoms.push(GroundAtom::named("E", &[x, y]));
            atoms.push(GroundAtom::named("E", &[y, x]));
        }
        Instance::from_atoms(atoms)
    }

    fn rows_sorted(q: &CompiledQuery, db: &Instance, s: Strategy) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = q
            .search(db)
            .strategy(s)
            .table()
            .rows()
            .map(|r| r.to_vec())
            .collect();
        rows.sort();
        rows
    }

    fn assert_strategies_agree(src: &str, db: &Instance) {
        let q = parse_cq(src).unwrap();
        let plan = CompiledQuery::compile(&q.atoms);
        assert_eq!(
            rows_sorted(&plan, db, Strategy::Wcoj),
            rows_sorted(&plan, db, Strategy::Backtrack),
            "{src}"
        );
    }

    #[test]
    fn wcoj_matches_backtracker_on_shapes() {
        let db = tri_db();
        for src in [
            "Q() :- E(X,Y)",
            "Q() :- E(X,Y), E(Y,Z)",
            "Q() :- E(X,Y), E(Y,Z), E(Z,X)",
            "Q() :- E(X,Y), E(Y,X)",
            "Q() :- E(X,X)",
            "Q() :- E(a,Y), E(Y,Z)",
            "Q() :- E(X,Y), E(X,Z), E(X,W)",
        ] {
            assert_strategies_agree(src, &db);
        }
    }

    #[test]
    fn planner_gate_prefers_wcoj_only_on_hard_shapes() {
        let gate = |src: &str| {
            let q = parse_cq(src).unwrap();
            CompiledQuery::compile(&q.atoms).prefers_wcoj()
        };
        // Cyclic: triangle, square, clique.
        assert!(gate("Q() :- E(X,Y), E(Y,Z), E(Z,X)"));
        assert!(gate("Q() :- E(X,Y), E(Y,Z), E(Z,W), E(W,X)"));
        // High-arity multiway join: one variable in three atoms.
        assert!(gate("Q() :- E(X,Y), E(X,Z), E(X,W)"));
        // Acyclic, low-join: paths, single atoms, pairs.
        assert!(!gate("Q() :- E(X,Y)"));
        assert!(!gate("Q() :- E(X,Y), E(Y,Z)"));
        assert!(!gate("Q() :- E(X,Y), E(Y,Z), E(Z,W)"));
        // Guarded triangle: the covering atom makes it α-acyclic, but the
        // shared variables still hit the multiway trigger.
        assert!(gate("Q() :- T(X,Y,Z), E(X,Y), E(Y,Z), E(Z,X)"));
    }

    #[test]
    fn wcoj_respects_modes_and_fixed_slots() {
        let db = tri_db();
        let q = parse_cq("Q() :- E(X,Y), E(Y,Z), E(Z,X)").unwrap();
        let plan = CompiledQuery::compile(&q.atoms);
        // Triangle homs: 6 oriented triangles on {a,b,c} plus 2-cycles
        // using repeated vertices; count must match the backtracker.
        assert_eq!(
            plan.search(&db).strategy(Strategy::Wcoj).count(),
            plan.search(&db).strategy(Strategy::Backtrack).count()
        );
        assert_eq!(
            plan.search(&db)
                .strategy(Strategy::Wcoj)
                .injective()
                .count(),
            plan.search(&db)
                .strategy(Strategy::Backtrack)
                .injective()
                .count()
        );
        let allowed: HashSet<Value> = [v("a"), v("b"), v("c")].into_iter().collect();
        assert_eq!(
            plan.search(&db)
                .strategy(Strategy::Wcoj)
                .restrict_images(&allowed)
                .count(),
            plan.search(&db)
                .strategy(Strategy::Backtrack)
                .restrict_images(&allowed)
                .count()
        );
        let sx = plan.slot_of(crate::cq::Var(0)).unwrap();
        assert_eq!(
            plan.search(&db)
                .strategy(Strategy::Wcoj)
                .fix_slots([(sx, v("a"))])
                .count(),
            plan.search(&db)
                .strategy(Strategy::Backtrack)
                .fix_slots([(sx, v("a"))])
                .count()
        );
        // A fixed value outside the active domain: zero rows, no panic.
        assert_eq!(
            plan.search(&db)
                .strategy(Strategy::Wcoj)
                .fix_slots([(sx, v("zz"))])
                .count(),
            0
        );
    }

    #[test]
    fn wcoj_skip_atom_with_pinned_bindings() {
        let db = tri_db();
        let q = parse_cq("Q() :- E(X,Y), E(Y,Z), E(Z,X)").unwrap();
        let plan = CompiledQuery::compile(&q.atoms);
        let seed = plan
            .unify_atom(0, &GroundAtom::named("E", &["a", "b"]))
            .unwrap();
        let mut wcoj: Vec<Vec<Value>> = Vec::new();
        plan.search(&db)
            .strategy(Strategy::Wcoj)
            .fix_slots(seed.clone())
            .skip_atom(0)
            .for_each_row(|r| {
                wcoj.push(r.to_vec());
                std::ops::ControlFlow::Continue(())
            });
        let mut back: Vec<Vec<Value>> = Vec::new();
        plan.search(&db)
            .strategy(Strategy::Backtrack)
            .fix_slots(seed)
            .skip_atom(0)
            .for_each_row(|r| {
                back.push(r.to_vec());
                std::ops::ControlFlow::Continue(())
            });
        wcoj.sort();
        back.sort();
        assert_eq!(wcoj, back);
        assert!(!wcoj.is_empty());
    }

    #[test]
    fn wcoj_par_table_equals_sequential() {
        let db = tri_db();
        for src in [
            "Q() :- E(X,Y), E(Y,Z), E(Z,X)",
            "Q() :- E(X,Y), E(X,Z), E(X,W)",
        ] {
            let q = parse_cq(src).unwrap();
            let plan = CompiledQuery::compile(&q.atoms);
            assert!(plan.prefers_wcoj());
            let mut seq: Vec<Vec<Value>> = plan
                .search(&db)
                .table()
                .rows()
                .map(|r| r.to_vec())
                .collect();
            seq.sort();
            for w in [1usize, 2, 4, 7] {
                let mut par: Vec<Vec<Value>> = plan
                    .search(&db)
                    .par_table(w)
                    .rows()
                    .map(|r| r.to_vec())
                    .collect();
                par.sort();
                assert_eq!(par, seq, "{src} at {w} workers");
            }
        }
    }
}
