//! E7 — Theorem 5.10 / Prop 5.11: the contraction-based UCQ_k-equivalence
//! decision for CQSs.

use gtgd_bench::harness;
use gtgd_chase::parse_tgds;
use gtgd_core::{cqs_uniformly_ucqk_equivalent, Cqs, EvalConfig};
use gtgd_query::parse_ucq;

fn main() {
    harness::group("e7_meta_cqs");
    let cfg = EvalConfig::default();
    for &extra in &[0usize, 2, 4] {
        let mut atoms = vec![
            "P(X2,X1)".to_string(),
            "P(X4,X1)".to_string(),
            "P(X2,X3)".to_string(),
            "P(X4,X3)".to_string(),
            "R1(X1)".to_string(),
            "R2(X2)".to_string(),
            "R3(X3)".to_string(),
            "R4(X4)".to_string(),
        ];
        for i in 0..extra {
            atoms.push(format!("S{i}(X1)"));
        }
        let s = Cqs::new(
            parse_tgds("R2(X) -> R4(X)").unwrap(),
            parse_ucq(&format!("Q() :- {}", atoms.join(", "))).unwrap(),
        );
        harness::case(&format!("decide_ucq1_equiv/{extra}"), || {
            cqs_uniformly_ucqk_equivalent(&s, 1, &cfg)
        });
    }
}
