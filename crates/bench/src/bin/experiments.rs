//! Regenerates the experiment tables (DESIGN.md §4 / EXPERIMENTS.md).
//!
//! Usage:
//! ```text
//! experiments                    # run everything
//! experiments E4 E6              # run selected experiments
//! experiments --json out.json E1
//! experiments --jobs 4           # run independent series concurrently
//! experiments --kernel-json BENCH_kernel.json   # kernel before/after only
//! experiments --wcoj-json BENCH_wcoj.json       # WCOJ vs backtracker only
//! ```
//!
//! With `--jobs N`, independent experiment series run on an N-worker pool;
//! tables are still printed in request order. Timings measured under
//! `--jobs > 1` are noisier (series share cores), so published numbers
//! should come from a sequential run — the flag exists to make full-suite
//! regeneration fast on developer machines.

use gtgd_bench::{
    kernel_benchmark, kernel_json, run_experiment, tables_to_json, wcoj_benchmark, wcoj_json,
    ExperimentTable,
};
use gtgd_data::Pool;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut kernel_path: Option<String> = None;
    let mut wcoj_path: Option<String> = None;
    let mut jobs = 1usize;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                json_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--kernel-json" => {
                kernel_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--wcoj-json" => {
                wcoj_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--jobs" => {
                jobs = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--jobs expects a positive integer");
                        std::process::exit(2);
                    });
                i += 2;
            }
            other => {
                ids.push(other.to_string());
                i += 1;
            }
        }
    }
    if let Some(path) = kernel_path {
        // Kernel mode: run only the kernel-relevant series (E2/E9/E12/E15)
        // and emit the before/after report; skips the full suite.
        let metrics = kernel_benchmark();
        for m in &metrics {
            println!(
                "{:>4} {:<18} n={:<4} before {:>9.3} ms  after {:>9.3} ms  speedup {:>6.2}x",
                m.experiment,
                m.metric,
                m.n,
                m.before_ms,
                m.after_ms,
                m.speedup()
            );
        }
        let mut f = std::fs::File::create(&path).expect("create kernel json output");
        f.write_all(kernel_json(&metrics).as_bytes())
            .expect("write kernel json");
        eprintln!("wrote {path}");
        return;
    }
    if let Some(path) = wcoj_path {
        // WCOJ mode: measure the leapfrog executor against the forced
        // backtracker live on the cyclic-shape workloads; skips the suite.
        let metrics = wcoj_benchmark();
        for m in &metrics {
            println!(
                "{:<38} backtrack {:>9.3} ms  wcoj {:>9.3} ms  speedup {:>6.2}x  \
                 planner {:<9} agree {}",
                m.workload,
                m.backtrack_ms,
                m.wcoj_ms,
                m.speedup(),
                m.planner,
                m.answers_agree
            );
        }
        let mut f = std::fs::File::create(&path).expect("create wcoj json output");
        f.write_all(wcoj_json(&metrics).as_bytes())
            .expect("write wcoj json");
        eprintln!("wrote {path}");
        return;
    }
    if ids.is_empty() {
        ids = (1..=15).map(|i| format!("E{i}")).collect();
    }
    let results: Vec<Option<ExperimentTable>> =
        Pool::with_workers(jobs).map(&ids, |id| run_experiment(id));
    let mut tables: Vec<ExperimentTable> = Vec::new();
    for (id, result) in ids.iter().zip(results) {
        match result {
            Some(t) => {
                println!("{}", t.render());
                tables.push(t);
            }
            None => eprintln!("unknown experiment id: {id}"),
        }
    }
    if let Some(path) = json_path {
        let mut f = std::fs::File::create(&path).expect("create json output");
        f.write_all(tables_to_json(&tables).as_bytes())
            .expect("write json");
        eprintln!("wrote {path}");
    }
}
