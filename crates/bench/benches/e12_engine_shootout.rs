//! E12 — evaluation-engine shootout on acyclic queries, including the
//! parallel homomorphism engine.

use gtgd_bench::harness;
use gtgd_bench::workloads::grid_db;
use gtgd_query::{
    check_answer_yannakakis, decomp_eval::check_answer_decomposed, holds_boolean, parse_cq,
    HomSearch,
};

fn main() {
    harness::group("e12_engine_shootout");
    let q = parse_cq("Q() :- H(A,B), H(B,C), H(C,D), H(D,E), H(E,F)").unwrap();
    for &n in &[100usize, 400] {
        let db = grid_db(4, n);
        harness::case(&format!("yannakakis/{n}"), || {
            check_answer_yannakakis(&q, &db, &[])
        });
        harness::case(&format!("decomposition_dp/{n}"), || {
            check_answer_decomposed(&q, &db, &[])
        });
        harness::case(&format!("backtracking/{n}"), || holds_boolean(&q, &db));
        harness::case(&format!("enumerate_seq/{n}"), || {
            HomSearch::new(&q.atoms, &db).all().len()
        });
        harness::case(&format!("enumerate_par4/{n}"), || {
            HomSearch::new(&q.atoms, &db).par_all(4).len()
        });
    }
}
