//! Closed-world querying under integrity constraints (CQSs): the paper's
//! Example 4.4 as a query-optimization story. Integrity constraints can
//! lower a query's *semantic* treewidth, unlocking the polynomial
//! evaluation of Prop 2.1.
//!
//! Run with: `cargo run --example constraint_optimization --release`

use gtgd::chase::parse_tgds;
use gtgd::data::{GroundAtom, Instance};
use gtgd::omq::approx::cqs_uniformly_ucqk_equivalent;
use gtgd::omq::{Cqs, EvalConfig};
use gtgd::query::decomp_eval::check_answer_ucq_decomposed;
use gtgd::query::{parse_ucq, tw::ucq_treewidth};
use std::time::Instant;

fn main() {
    // Example 4.4: the integrity constraint R2 ⊆ R4 holds on all databases.
    let sigma = parse_tgds("R2(X) -> R4(X)").unwrap();
    // The query is a treewidth-2 core...
    let q =
        parse_ucq("Q() :- P(X2,X1), P(X4,X1), P(X2,X3), P(X4,X3), R1(X1), R2(X2), R3(X3), R4(X4)")
            .unwrap();
    println!("syntactic treewidth of q: {}", ucq_treewidth(&q));

    let s = Cqs::new(sigma, q);
    // ...but modulo the constraints it is UCQ_1-equivalent (Theorem 5.10's
    // meta problem, decided through the contraction approximation).
    let (verdict, rewriting) = cqs_uniformly_ucqk_equivalent(&s, 1, &EvalConfig::default());
    println!(
        "uniformly UCQ_1-equivalent: {} (exact = {})",
        verdict.holds, verdict.exact
    );
    let rewriting = rewriting.expect("Example 4.4 is UCQ_1-equivalent");
    println!(
        "rewriting: {} disjuncts, treewidth {}",
        rewriting.query.disjuncts.len(),
        ucq_treewidth(&rewriting.query)
    );

    // Build a family of constraint-satisfying databases and compare: the
    // original tw-2 query evaluated by backtracking vs the tw-1 rewriting
    // through the Prop 2.1 DP.
    for &n in &[40usize, 80, 160] {
        let db = bipartite_db(n);
        s.check_promise(&db).expect("db satisfies Σ");
        let t0 = Instant::now();
        let a0 = s.evaluate_unchecked(&db).contains(&vec![]);
        let t_orig = t0.elapsed();
        let t1 = Instant::now();
        let a1 = check_answer_ucq_decomposed(&rewriting.query, &db, &[]);
        let t_rew = t1.elapsed();
        assert_eq!(a0, a1, "the rewriting is equivalent on Σ-databases");
        println!(
            "n = {n:4}  |D| = {:5}  original: {:>9.3?}  rewriting(DP): {:>9.3?}  answer: {a0}",
            db.len(),
            t_orig,
            t_rew
        );
    }
    println!("the rewriting answers the same question with a treewidth-1 plan");
}

/// A Σ-satisfying database: a bipartite P-graph where R2-nodes are all R4
/// (inclusion dependency satisfied), plus R1/R3 marks. The diamond pattern
/// has a match only through the R2 = R4 overlap the constraint guarantees.
fn bipartite_db(n: usize) -> Instance {
    let mut atoms = Vec::new();
    for i in 0..n {
        let left = format!("l{i}");
        let right0 = format!("r{i}");
        let right1 = format!("r{}", (i + 1) % n);
        atoms.push(GroundAtom::named("P", &[&left, &right0]));
        atoms.push(GroundAtom::named("P", &[&left, &right1]));
        atoms.push(GroundAtom::named("R2", &[&left]));
        atoms.push(GroundAtom::named("R4", &[&left])); // Σ: R2 ⊆ R4
        atoms.push(GroundAtom::named("R1", &[&right0]));
        atoms.push(GroundAtom::named("R3", &[&right1]));
    }
    Instance::from_atoms(atoms)
}
