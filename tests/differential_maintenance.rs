//! Differential testing of incremental materialization: a
//! [`MaintainedInstance`] driven through seeded random scripts of
//! `insert` / `retract` operations must agree — after *every* operation —
//! with a from-scratch oblivious re-chase of its current base, under
//! three oracles at once:
//!
//! * **instance isomorphism** (`instance_isomorphic`): the maintained
//!   fixpoint and the re-chased fixpoint are identical up to null
//!   renaming, at every parallel-oracle width (1, 2, 4 workers);
//! * **query answers**: prepared queries — compiled *once*, before any
//!   maintenance, under both join strategies — return the same null-free
//!   answer set and the same total answer count on the maintained
//!   instance as on the re-chase (answers over nulls can only differ by
//!   the renaming, so sets are compared on the named fragment and
//!   cardinality on the whole);
//! * **base-fact bookkeeping**: the maintained base always equals the
//!   script's own ledger.
//!
//! The rule pool is weakly acyclic (no existential position feeds a rule
//! that creates existentials), so every rule subset terminates and the
//! differential contract is over true fixpoints, never truncations.
//! Scripts come in three shapes per the case index: insert-only (grow
//! from a seed base), retract-only (shrink from the full base), and
//! interleaved (random walks that also re-assert previously retracted
//! facts, exercising DRed rescue followed by re-fire).

use gtgd::chase::{parse_tgds, ChaseRunner, MaintainedInstance, Tgd};
use gtgd::data::{GroundAtom, Instance, Rng, Value};
use gtgd::query::{instance_isomorphic, parse_cq, Engine, PreparedQuery, Strategy};
use std::collections::HashSet;

const WORKER_WIDTHS: [usize; 3] = [1, 2, 4];

/// Weakly acyclic guarded pool: `A(X) -> R(X,Y)` is the only
/// null-creating rule, and nothing derives `A` (or anything that feeds
/// it), so no null ever reaches an existential body — every subset of the
/// pool has a terminating oblivious chase. The `R,B -> T -> S -> U`
/// cascade gives retraction multi-hop cones, and the two-atom bodies give
/// firings more than one support to die through.
fn rule_pool() -> Vec<Tgd> {
    parse_tgds(
        "A(X) -> B(X). \
         B(X) -> C(X). \
         A(X) -> R(X,Y). \
         R(X,Y) -> S(Y,X). \
         R(X,Y), B(X) -> T(X,Y). \
         S(X,Y) -> U(Y). \
         T(X,Y) -> S(X,Y)",
    )
    .unwrap()
}

/// Prepared once per case — before any maintenance — and reused across
/// every operation: compiled plans must stay valid as the instance
/// underneath them grows and shrinks.
fn prepared_queries() -> Vec<(String, PreparedQuery)> {
    [
        "Q(X) :- B(X)",
        "Q(X) :- C(X), A(X)",
        "Q(X,Y) :- R(X,Y), S(Y,X)",
        "Q(Y) :- T(X,Y), U(Y)",
        "Q(X) :- S(X,Y)",
    ]
    .iter()
    .flat_map(|src| {
        let q = parse_cq(src).unwrap();
        [Strategy::Backtrack, Strategy::Wcoj]
            .map(|s| (format!("{src} {s:?}"), Engine::prepare(&q).strategy(s)))
    })
    .collect()
}

/// Random base facts over `A` / `R` / `S` with a 4-constant domain —
/// small enough that scripts collide on shared subtrees, which is where
/// rescue logic earns its keep.
fn arb_atoms(rng: &mut Rng) -> Vec<GroundAtom> {
    let k = rng.range(4, 12);
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for _ in 0..k {
        let (a, b) = (rng.range(0, 4), rng.range(0, 4));
        let atom = match rng.range(0, 3) {
            0 => GroundAtom::named("A", &[&format!("c{a}")]),
            1 => GroundAtom::named("R", &[&format!("c{a}"), &format!("c{b}")]),
            _ => GroundAtom::named("S", &[&format!("c{a}"), &format!("c{b}")]),
        };
        if seen.insert(atom.clone()) {
            out.push(atom);
        }
    }
    out
}

fn sigma_for_mask(pool: &[Tgd], mask: u8) -> Vec<Tgd> {
    pool.iter()
        .enumerate()
        .filter(|(i, _)| mask >> i & 1 == 1)
        .map(|(_, t)| t.clone())
        .collect()
}

fn named_only(answers: &HashSet<Vec<Value>>) -> Vec<Vec<Value>> {
    let mut named: Vec<Vec<Value>> = answers
        .iter()
        .filter(|t| t.iter().all(|v| v.is_named()))
        .cloned()
        .collect();
    named.sort();
    named
}

/// The full oracle battery after one maintenance operation.
fn check_equiv(
    m: &MaintainedInstance,
    base: &[GroundAtom],
    sigma: &[Tgd],
    queries: &[(String, PreparedQuery)],
    ctx: &str,
) {
    assert!(m.complete(), "{ctx}: terminating pool must reach fixpoint");
    assert!(
        base.iter().all(|a| m.is_base(a)),
        "{ctx}: base ledger disagrees"
    );
    let base_db = Instance::from_atoms(base.iter().cloned());
    for w in WORKER_WIDTHS {
        let scratch = ChaseRunner::new(sigma).workers(w).run(&base_db);
        assert!(scratch.complete, "{ctx}: oracle w={w} incomplete");
        assert!(
            instance_isomorphic(m.instance(), &scratch.instance),
            "{ctx}: maintained ({} atoms) is not isomorphic to re-chase w={w} ({} atoms)",
            m.instance().len(),
            scratch.instance.len()
        );
        if w == 1 {
            for (qname, pq) in queries {
                let mine = pq.answers(m.instance());
                let theirs = pq.answers(&scratch.instance);
                assert_eq!(
                    mine.len(),
                    theirs.len(),
                    "{ctx} [{qname}]: answer cardinality"
                );
                assert_eq!(
                    named_only(&mine),
                    named_only(&theirs),
                    "{ctx} [{qname}]: null-free answers"
                );
            }
        }
    }
}

/// 168 seeded cases × {insert-only, retract-only, interleaved} × oracle
/// widths {1, 2, 4} × both prepared join strategies, checked after every
/// single operation.
#[test]
fn maintained_scripts_match_from_scratch_rechase() {
    let pool = rule_pool();
    let queries = prepared_queries();
    let mut ops = 0usize;
    for case in 0u64..168 {
        let mut rng = Rng::seed(0x0D_5EED ^ case);
        // Never an empty rule set: an identity script would test nothing.
        let sigma = sigma_for_mask(&pool, (case % 127 + 1) as u8);
        let atoms = arb_atoms(&mut rng);
        let mode = case % 3;
        let ctx = |step: usize| format!("case {case} mode {mode} step {step}");
        match mode {
            // Insert-only: grow from a single seed fact to the full set.
            0 => {
                let seed_db = Instance::from_atoms(atoms[..1].iter().cloned());
                let mut base: Vec<GroundAtom> = atoms[..1].to_vec();
                let mut m = ChaseRunner::new(&sigma).maintain(&seed_db);
                check_equiv(&m, &base, &sigma, &queries, &ctx(0));
                let mut next = 1;
                let mut step = 1;
                while next < atoms.len() {
                    let batch_end = (next + rng.range(1, 3)).min(atoms.len());
                    let batch = &atoms[next..batch_end];
                    base.extend(batch.iter().cloned());
                    m.insert(batch.iter().cloned());
                    check_equiv(&m, &base, &sigma, &queries, &ctx(step));
                    next = batch_end;
                    step += 1;
                    ops += 1;
                }
            }
            // Retract-only: shrink from the full set down to one fact.
            1 => {
                let full_db = Instance::from_atoms(atoms.iter().cloned());
                let mut base = atoms.clone();
                let mut m = ChaseRunner::new(&sigma).maintain(&full_db);
                check_equiv(&m, &base, &sigma, &queries, &ctx(0));
                let mut step = 1;
                while base.len() > 1 {
                    let n = if base.len() > 2 && rng.chance(0.4) {
                        2
                    } else {
                        1
                    };
                    let victims: Vec<GroundAtom> = (0..n)
                        .map(|_| base.swap_remove(rng.range(0, base.len())))
                        .collect();
                    m.retract(victims);
                    check_equiv(&m, &base, &sigma, &queries, &ctx(step));
                    step += 1;
                    ops += 1;
                }
            }
            // Interleaved: random inserts (including re-asserting facts
            // retracted earlier in the same script) and retracts.
            _ => {
                let half = atoms.len() / 2;
                let seed_db = Instance::from_atoms(atoms[..half].iter().cloned());
                let mut base: Vec<GroundAtom> = atoms[..half].to_vec();
                let mut m = ChaseRunner::new(&sigma).maintain(&seed_db);
                check_equiv(&m, &base, &sigma, &queries, &ctx(0));
                for step in 1..=6 {
                    let grow = base.is_empty() || rng.chance(0.5);
                    if grow {
                        let a = atoms[rng.range(0, atoms.len())].clone();
                        if !base.contains(&a) {
                            base.push(a.clone());
                        }
                        m.insert([a]);
                    } else {
                        let a = base.swap_remove(rng.range(0, base.len()));
                        m.retract([a]);
                    }
                    check_equiv(&m, &base, &sigma, &queries, &ctx(step));
                    ops += 1;
                }
            }
        }
    }
    assert!(ops >= 600, "scripts exercised only {ops} operations");
}

/// The oblivious-semantics boundary, pinned as a test: after maintenance,
/// the maintained instance can legitimately differ from a from-scratch
/// *restricted* chase (insert a ground `R` fact after an existential
/// fired — the incremental run keeps the null the restricted re-chase
/// never mints). This is exactly why [`MaintainedInstance`] maintains the
/// oblivious fixpoint and `ChaseRunner::maintain` rejects the restricted
/// variant.
#[test]
fn restricted_semantics_would_break_maintenance() {
    use gtgd::chase::{restricted_chase, ChaseBudget};
    let sigma = parse_tgds("P(X) -> R(X,Y)").unwrap();
    let db = Instance::from_atoms([GroundAtom::named("P", &["a"])]);
    let mut m = ChaseRunner::new(&sigma).maintain(&db);
    m.insert([GroundAtom::named("R", &["a", "b"])]);
    let mut grown = db.clone();
    grown.insert(GroundAtom::named("R", &["a", "b"]));
    let restricted = restricted_chase(&grown, &sigma, &ChaseBudget::unbounded());
    // The restricted re-chase sees R(a,b) up front and never fires; the
    // maintained oblivious fixpoint keeps its null witness.
    assert_eq!(restricted.instance.len(), 2);
    assert_eq!(m.instance().len(), 3);
    // And the oblivious re-chase agrees with the maintained result.
    let oblivious = ChaseRunner::new(&sigma).run(&grown);
    assert!(instance_isomorphic(m.instance(), &oblivious.instance));
}
