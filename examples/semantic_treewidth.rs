//! Deciding semantic treewidth: is a given OMQ / CQS equivalent to one
//! whose query has treewidth ≤ k? (Theorems 5.1, 5.6, 5.10 — the meta
//! problems behind the dichotomies.)
//!
//! Run with: `cargo run --example semantic_treewidth`

use gtgd::chase::parse_tgds;
use gtgd::omq::approx::{cqs_uniformly_ucqk_equivalent, omq_ucqk_equivalent, GroundingPolicy};
use gtgd::omq::{Cqs, EvalConfig, Omq};
use gtgd::query::{parse_ucq, tw::ucq_treewidth};

fn main() {
    let cfg = EvalConfig::default();
    let policy = GroundingPolicy::default();

    // ---- Example 4.4 (first part): the ontology lowers the treewidth ----
    let sigma = parse_tgds("R2(X) -> R4(X)").unwrap();
    let q =
        parse_ucq("Q() :- P(X2,X1), P(X4,X1), P(X2,X3), P(X4,X3), R1(X1), R2(X2), R3(X3), R4(X4)")
            .unwrap();
    println!("q has syntactic treewidth {}", ucq_treewidth(&q));

    let q1 = Omq::full_schema(sigma.clone(), q.clone());
    let (v, witness) = omq_ucqk_equivalent(&q1, 1, &policy, &cfg);
    println!("OMQ (S, Σ, q): UCQ_1-equivalent? {}", v.holds);
    if let Some(w) = witness {
        println!(
            "  witness from (G, UCQ_1): {} disjuncts, treewidth {}",
            w.query.disjuncts.len(),
            ucq_treewidth(&w.query)
        );
    }
    assert!(v.holds);

    // Dropping the ontology flips the verdict: q is a treewidth-2 core.
    let q0 = Omq::full_schema(vec![], q.clone());
    let (v0, _) = omq_ucqk_equivalent(&q0, 1, &policy, &cfg);
    println!("OMQ (S, ∅, q): UCQ_1-equivalent? {}", v0.holds);
    assert!(!v0.holds);

    // But k = 2 suffices without any ontology (q itself is in UCQ_2).
    let (v2, _) = omq_ucqk_equivalent(&q0, 2, &policy, &cfg);
    println!("OMQ (S, ∅, q): UCQ_2-equivalent? {}", v2.holds);
    assert!(v2.holds);

    // ---- The same story closed-world: CQSs (Theorem 5.10) ----
    let s = Cqs::new(sigma, q.clone());
    let (cv, rewriting) = cqs_uniformly_ucqk_equivalent(&s, 1, &cfg);
    println!("CQS (Σ, q): uniformly UCQ_1-equivalent? {}", cv.holds);
    assert!(cv.holds);
    if let Some(r) = rewriting {
        println!(
            "  constraint-aware rewriting: {} disjuncts, treewidth {}",
            r.query.disjuncts.len(),
            ucq_treewidth(&r.query)
        );
    }
    let s0 = Cqs::new(vec![], q);
    let (cv0, _) = cqs_uniformly_ucqk_equivalent(&s0, 1, &cfg);
    println!("CQS (∅, q): uniformly UCQ_1-equivalent? {}", cv0.holds);
    assert!(!cv0.holds);

    // ---- An existential ontology bridging query components ----
    let sigma2 = parse_tgds("A(X) -> E(X,Y), B(Y)").unwrap();
    let q2 = parse_ucq("Q(X) :- E(X,Y), B(Y). Q(X) :- A(X)").unwrap();
    let omq2 = Omq::full_schema(sigma2, q2);
    let (v3, _) = omq_ucqk_equivalent(&omq2, 1, &policy, &cfg);
    println!("existential-bridge OMQ: UCQ_1-equivalent? {}", v3.holds);
    assert!(v3.holds);
}
