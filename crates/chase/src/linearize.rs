//! The explicit `(D*, Σ*)` linearization of Lemma A.3: guarded OMQ
//! evaluation reduced to **linear** TGDs over type predicates.
//!
//! Each reachable canonical Σ-type `τ` becomes a fresh predicate `[τ]`
//! whose arity is the type's width. The construction emits:
//!
//! * the typed database `D*`: one `[τ_α](c̄)` atom per guarded set of the
//!   ground saturation, where `τ_α` is the set's closed type;
//! * the *type generator* `Σ*_tg`: a linear rule `[τ](x̄) → ∃z̄ [τ′](ȳ)` per
//!   existential-head firing inside a type's closure, discovered by a
//!   breadth-first exploration of the type-transition graph;
//! * the *expander* `Σ*_ex`: `[τ](x̄) → R(x̄|_args)` for every atom the type
//!   contains.
//!
//! `chase(D*, Σ*)` then reproduces `chase(D, Σ)` atom-for-atom on the
//! original schema (up to null renaming) — which the tests verify against
//! the typed chase, giving an independent implementation of the paper's
//! FPT pipeline.

use crate::tgd::{Tgd, TgdClass};
use crate::types::{canonicalize, CanonType, Saturator};
use gtgd_data::{GroundAtom, Instance, Predicate, Value};
use gtgd_query::{HomSearch, QAtom, Term, Var};
use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;

/// The output of the linearization.
#[derive(Debug, Clone)]
pub struct Linearization {
    /// The typed database `D*`.
    pub d_star: Instance,
    /// The linear rule set `Σ* = Σ*_tg ∪ Σ*_ex`.
    pub sigma_star: Vec<Tgd>,
    /// Number of reachable canonical types registered.
    pub type_count: usize,
}

struct Registry {
    ids: HashMap<CanonType, usize>,
    types: Vec<CanonType>,
}

impl Registry {
    fn intern(&mut self, key: CanonType) -> (usize, bool) {
        if let Some(&id) = self.ids.get(&key) {
            return (id, false);
        }
        let id = self.types.len();
        self.ids.insert(key.clone(), id);
        self.types.push(key);
        (id, true)
    }
}

fn type_predicate(id: usize) -> Predicate {
    Predicate::new(&format!("__type{id}"))
}

/// Builds the explicit `(D*, Σ*)` for a guarded, constant-free Σ.
///
/// `max_types` caps the type-transition exploration (the paper's Σ* ranges
/// over *all* Σ-types, exponentially many; only reachable ones matter, and
/// the cap fails loudly rather than exploding).
pub fn linearize(db: &Instance, tgds: &[Tgd], max_types: usize) -> Linearization {
    for t in tgds {
        assert!(
            t.is_in(TgdClass::Guarded),
            "linearization requires guarded TGDs"
        );
    }
    let mut sat = Saturator::new(tgds);
    let ground = sat.ground_saturation(db);
    let mut registry = Registry {
        ids: HashMap::new(),
        types: Vec::new(),
    };
    // D*: a typed atom per guarded set of the saturated ground part.
    let mut d_star = Instance::new();
    let mut frontier: Vec<usize> = Vec::new();
    {
        let mut seen: HashSet<Vec<Value>> = HashSet::new();
        for a in ground.iter() {
            let mut d = a.dom();
            d.sort_unstable();
            if !seen.insert(d.clone()) {
                continue;
            }
            let keep: HashSet<Value> = d.iter().copied().collect();
            let bag = ground.restrict_to(&keep);
            let closed = sat.close_bag(&bag, &d);
            let (key, perm) = canonicalize(&closed, &d);
            let (id, new) = registry.intern(key);
            if new {
                frontier.push(id);
            }
            d_star.insert(GroundAtom::new(type_predicate(id), perm));
        }
    }
    // Explore type transitions breadth-first.
    let mut sigma_tg: Vec<Tgd> = Vec::new();
    let mut qi = 0usize;
    while qi < frontier.len() {
        let id = frontier[qi];
        qi += 1;
        assert!(
            registry.types.len() <= max_types,
            "type-transition exploration exceeded {max_types} types"
        );
        // Materialize a concrete bag of this type over scratch constants.
        let key = registry.types[id].clone();
        let width = key.width as usize;
        let scratch: Vec<Value> = (0..width).map(|_| Value::fresh_null()).collect();
        let bag = crate::types::decode(&key.atoms, &scratch);
        // Fire every existential-head trigger once.
        for tgd in tgds {
            let exist = tgd.existential_vars();
            if exist.is_empty() {
                continue; // full consequences are already inside closures
            }
            let frontier_vars = tgd.frontier();
            let homs: Vec<HashMap<Var, Value>> = {
                let mut out = Vec::new();
                HomSearch::new(&tgd.body, &bag).for_each(|h| {
                    out.push(h.clone());
                    ControlFlow::Continue(())
                });
                out
            };
            for h in homs {
                let mut assignment = h.clone();
                let mut child_consts: Vec<Value> = Vec::new();
                for &v in &frontier_vars {
                    let img = assignment[&v];
                    if !child_consts.contains(&img) {
                        child_consts.push(img);
                    }
                }
                for &z in &exist {
                    let n = Value::fresh_null();
                    assignment.insert(z, n);
                    child_consts.push(n);
                }
                let mut child = Instance::new();
                for head in &tgd.head {
                    child.insert(head.ground(&assignment));
                }
                let keep: HashSet<Value> = child_consts.iter().copied().collect();
                child.extend_from(&bag.restrict_to(&keep));
                let closed = sat.close_bag(&child, &child_consts);
                let (child_key, child_perm) = canonicalize(&closed, &child_consts);
                let (child_id, new) = registry.intern(child_key);
                if new {
                    frontier.push(child_id);
                }
                // Emit the linear rule [τ](x0..x_{w-1}) → ∃ fresh [τ′](args):
                // each child canonical position is either a parent position
                // (shared constant) or an existential variable.
                let parent_pos: HashMap<Value, usize> =
                    scratch.iter().enumerate().map(|(i, &v)| (v, i)).collect();
                let mut names: Vec<String> = (0..width).map(|i| format!("x{i}")).collect();
                let body = vec![QAtom::new(
                    type_predicate(id),
                    (0..width as u32).map(|i| Term::Var(Var(i))).collect(),
                )];
                let mut next = width as u32;
                let head_args: Vec<Term> = child_perm
                    .iter()
                    .map(|v| match parent_pos.get(v) {
                        Some(&i) => Term::Var(Var(i as u32)),
                        None => {
                            names.push(format!("z{next}"));
                            let t = Term::Var(Var(next));
                            next += 1;
                            t
                        }
                    })
                    .collect();
                let head = vec![QAtom::new(type_predicate(child_id), head_args)];
                let rule = Tgd::new(names, body, head);
                // Transitions repeat across firings; dedupe by display.
                if !sigma_tg.iter().any(|r| r.to_string() == rule.to_string()) {
                    sigma_tg.push(rule);
                }
            }
        }
    }
    // The expander: one rule per (type, member atom).
    let mut sigma_ex: Vec<Tgd> = Vec::new();
    for (id, key) in registry.types.iter().enumerate() {
        let width = key.width as usize;
        let names: Vec<String> = (0..width).map(|i| format!("x{i}")).collect();
        for atom in &key.atoms {
            let body = vec![QAtom::new(
                type_predicate(id),
                (0..width as u32).map(|i| Term::Var(Var(i))).collect(),
            )];
            let head = vec![QAtom::new(
                atom.pred,
                atom.args
                    .iter()
                    .map(|&p| Term::Var(Var(p as u32)))
                    .collect(),
            )];
            sigma_ex.push(Tgd::new(names.clone(), body, head));
        }
    }
    let mut sigma_star = sigma_tg;
    sigma_star.extend(sigma_ex);
    Linearization {
        d_star,
        sigma_star,
        type_count: registry.types.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{chase, ChaseBudget};
    use crate::tgd::parse_tgds;
    use crate::typed_chase::{typed_chase, DepthPolicy};
    use gtgd_query::{holds_boolean, parse_cq};

    fn db(atoms: &[(&str, &[&str])]) -> Instance {
        Instance::from_atoms(atoms.iter().map(|(p, args)| GroundAtom::named(p, args)))
    }

    #[test]
    fn all_rules_are_linear() {
        let tgds = parse_tgds("Emp(X) -> WorksIn(X,D). WorksIn(X,D) -> Dept(D)").unwrap();
        let d = db(&[("Emp", &["ann"])]);
        let lin = linearize(&d, &tgds, 64);
        assert!(lin.type_count >= 1);
        for r in &lin.sigma_star {
            assert!(r.is_in(TgdClass::Linear), "not linear: {r}");
        }
    }

    #[test]
    fn expanded_chase_matches_typed_chase_on_queries() {
        let tgds = parse_tgds("Dept(D) -> HasMgr(D,M), Emp(M). Emp(M) -> WorksIn(M,D2), Dept(D2)")
            .unwrap();
        let d = db(&[("Dept", &["sales"])]);
        let lin = linearize(&d, &tgds, 256);
        // Chase D* with the linear rules, bounded level (Lemma A.1).
        let expanded = chase(&lin.d_star, &lin.sigma_star, &ChaseBudget::levels(8));
        let reference = typed_chase(
            &d,
            &tgds,
            DepthPolicy::Adaptive {
                extra_levels: 5,
                max_level: 24,
            },
        );
        assert!(reference.saturated);
        for q_src in [
            "Q() :- HasMgr(D,M), WorksIn(M,D2)",
            "Q() :- WorksIn(M,D2), HasMgr(D2,M2), WorksIn(M2,D3)",
            "Q() :- Emp(M), WorksIn(M,D), HasMgr(D,M2), Emp(M2)",
        ] {
            let q = parse_cq(q_src).unwrap();
            assert_eq!(
                holds_boolean(&q, &expanded.instance),
                holds_boolean(&q, &reference.instance),
                "disagreement on {q_src}"
            );
        }
    }

    #[test]
    fn ground_types_expand_to_ground_atoms() {
        let tgds = parse_tgds("R(X,Y) -> S(Y,Z). S(Y,Z) -> T(Y)").unwrap();
        let d = db(&[("R", &["a", "b"])]);
        let lin = linearize(&d, &tgds, 64);
        let expanded = chase(&lin.d_star, &lin.sigma_star, &ChaseBudget::levels(4));
        // The deep-detour atom T(b) must be recoverable from D* alone.
        assert!(expanded.instance.contains(&GroundAtom::named("T", &["b"])));
        assert!(expanded
            .instance
            .contains(&GroundAtom::named("R", &["a", "b"])));
    }

    #[test]
    fn type_count_is_data_independent() {
        let tgds = parse_tgds("A(X) -> R(X,Y), A(Y)").unwrap();
        let small = linearize(&db(&[("A", &["a"])]), &tgds, 64);
        let large = linearize(
            &db(&[("A", &["a"]), ("A", &["b"]), ("A", &["c"])]),
            &tgds,
            64,
        );
        assert_eq!(small.type_count, large.type_count);
        assert!(large.d_star.len() > small.d_star.len());
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn type_cap_enforced() {
        let tgds = parse_tgds("A(X) -> R(X,Y), B(Y). B(X) -> S(X,Y), A(Y)").unwrap();
        linearize(&db(&[("A", &["a"])]), &tgds, 1);
    }
}
