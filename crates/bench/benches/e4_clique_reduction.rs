//! E4 — Theorems 5.4/5.13: the p-Clique reduction. Grid-query (unbounded
//! treewidth) evaluation on reduced databases grows sharply with `k`; a
//! bounded-treewidth query over the same data stays flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtgd_bench::workloads::{plant_clique, random_graph};
use gtgd_core::{clique_to_cqs_instance, grid_cqs_family};
use gtgd_query::decomp_eval::check_answer_decomposed;
use gtgd_query::parse_cq;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_clique_reduction");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for &k in &[2usize, 3] {
        let fam = grid_cqs_family(k);
        let mut g = random_graph(8, 0.5, 11);
        plant_clique(&mut g, k, 5);
        group.bench_with_input(BenchmarkId::new("build_dstar", k), &g, |b, g| {
            b.iter(|| clique_to_cqs_instance(g, k, &fam))
        });
        let reduced = clique_to_cqs_instance(&g, k, &fam);
        group.bench_with_input(
            BenchmarkId::new("eval_grid_query", k),
            &reduced.grohe.instance,
            |b, db| b.iter(|| gtgd_query::ucq_holds_boolean(&fam.cqs.query, db)),
        );
        let path = parse_cq("Q() :- H(A,B), H(B,C)").unwrap();
        group.bench_with_input(
            BenchmarkId::new("eval_path_query", k),
            &reduced.grohe.instance,
            |b, db| b.iter(|| check_answer_decomposed(&path, db, &[])),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
