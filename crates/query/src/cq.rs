//! Conjunctive queries and UCQs.

use gtgd_data::{GroundAtom, Instance, Predicate, Schema, Value};
use std::collections::{BTreeSet, HashMap};

/// A query variable, scoped to its owning [`Cq`] (an index into the CQ's
/// variable-name table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// The index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A term of a query atom: a variable or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A query variable.
    Var(Var),
    /// A constant.
    Const(Value),
}

/// An atom of a CQ: `R(t̄)` over variables and constants.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QAtom {
    /// The relation symbol.
    pub predicate: Predicate,
    /// The argument terms.
    pub args: Vec<Term>,
}

impl QAtom {
    /// Builds an atom.
    pub fn new(predicate: Predicate, args: Vec<Term>) -> QAtom {
        QAtom { predicate, args }
    }

    /// The distinct variables of this atom, in first-occurrence order.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for t in &self.args {
            if let Term::Var(v) = *t {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Whether the atom mentions `v`.
    pub fn mentions(&self, v: Var) -> bool {
        self.args.contains(&Term::Var(v))
    }

    /// Applies a variable substitution (constants unchanged).
    pub fn map_vars(&self, f: impl Fn(Var) -> Var) -> QAtom {
        QAtom {
            predicate: self.predicate,
            args: self
                .args
                .iter()
                .map(|t| match *t {
                    Term::Var(v) => Term::Var(f(v)),
                    c => c,
                })
                .collect(),
        }
    }

    /// Grounds the atom under a total variable assignment.
    pub fn ground(&self, h: &HashMap<Var, Value>) -> GroundAtom {
        GroundAtom::new(
            self.predicate,
            self.args
                .iter()
                .map(|t| match *t {
                    Term::Var(v) => h[&v],
                    Term::Const(c) => c,
                })
                .collect(),
        )
    }
}

fn dedup_atoms(atoms: Vec<QAtom>) -> Vec<QAtom> {
    let mut out: Vec<QAtom> = Vec::with_capacity(atoms.len());
    for a in atoms {
        if !out.contains(&a) {
            out.push(a);
        }
    }
    out
}

/// A conjunctive query `q(x̄) := ∃ȳ (R₁(x̄₁) ∧ … ∧ Rₘ(x̄ₘ))`.
///
/// The answer variables `x̄` are `answer_vars`; every other variable used in
/// `atoms` is existentially quantified. Variables are indices into
/// `var_names` (kept for display and parsing round-trips).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cq {
    var_names: Vec<String>,
    /// The body atoms.
    pub atoms: Vec<QAtom>,
    /// The free (answer) variables, in output order.
    pub answer_vars: Vec<Var>,
}

impl Cq {
    /// Builds a CQ from parts. `var_names[i]` names `Var(i)`. Duplicate
    /// atoms are removed: a CQ is a *set* of atoms, and contractions rely on
    /// identified atoms collapsing.
    pub fn new(var_names: Vec<String>, atoms: Vec<QAtom>, answer_vars: Vec<Var>) -> Cq {
        let q = Cq {
            var_names,
            atoms: dedup_atoms(atoms),
            answer_vars,
        };
        for v in q.all_vars() {
            assert!(
                v.index() < q.var_names.len(),
                "variable {v:?} has no name entry"
            );
        }
        let mut seen = BTreeSet::new();
        for &v in &q.answer_vars {
            assert!(seen.insert(v), "duplicate answer variable");
        }
        q
    }

    /// A fresh variable-name table for building CQs programmatically.
    pub fn make_vars(names: &[&str]) -> (Vec<String>, Vec<Var>) {
        let table: Vec<String> = names.iter().map(|s| s.to_string()).collect();
        let vars = (0..names.len() as u32).map(Var).collect();
        (table, vars)
    }

    /// The name of `v`.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.index()]
    }

    /// The variable-name table.
    pub fn var_names(&self) -> &[String] {
        &self.var_names
    }

    /// All variables occurring in atoms or as answer variables, ascending.
    pub fn all_vars(&self) -> Vec<Var> {
        let mut s: BTreeSet<Var> = self.answer_vars.iter().copied().collect();
        for a in &self.atoms {
            s.extend(a.vars());
        }
        s.into_iter().collect()
    }

    /// The existentially quantified variables (used but not answer).
    pub fn existential_vars(&self) -> Vec<Var> {
        self.all_vars()
            .into_iter()
            .filter(|v| !self.answer_vars.contains(v))
            .collect()
    }

    /// Arity: the number of answer variables.
    pub fn arity(&self) -> usize {
        self.answer_vars.len()
    }

    /// Whether the query is Boolean (arity 0).
    pub fn is_boolean(&self) -> bool {
        self.answer_vars.is_empty()
    }

    /// Number of atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// The canonical database `D[q]`: variables frozen as fresh nulls.
    /// Returns the database and the freezing assignment.
    pub fn canonical_database(&self) -> (Instance, HashMap<Var, Value>) {
        let mut h = HashMap::new();
        for v in self.all_vars() {
            h.insert(v, Value::fresh_null());
        }
        let db = Instance::from_atoms(self.atoms.iter().map(|a| a.ground(&h)));
        (db, h)
    }

    /// The schema realized by this query's atoms.
    pub fn schema(&self) -> Schema {
        let mut s = Schema::new();
        for a in &self.atoms {
            s.add(a.predicate, a.args.len());
        }
        s
    }

    /// Applies a variable substitution to all atoms and answer variables,
    /// keeping the name table (callers merging variables should prefer
    /// [`crate::contract::merge_vars`], which also validates answer-variable
    /// rules).
    pub fn map_vars(&self, f: impl Fn(Var) -> Var + Copy) -> Cq {
        Cq {
            var_names: self.var_names.clone(),
            atoms: dedup_atoms(self.atoms.iter().map(|a| a.map_vars(f)).collect()),
            answer_vars: self.answer_vars.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Re-indexes variables to a compact range `0..n` (dropping unused name
    /// entries). Preserves semantics; useful after contraction.
    pub fn compact(&self) -> Cq {
        let used = self.all_vars();
        let mut remap: HashMap<Var, Var> = HashMap::new();
        let mut names = Vec::with_capacity(used.len());
        for (i, &v) in used.iter().enumerate() {
            remap.insert(v, Var(i as u32));
            names.push(self.var_names[v.index()].clone());
        }
        Cq {
            var_names: names,
            atoms: dedup_atoms(
                self.atoms
                    .iter()
                    .map(|a| a.map_vars(|v| remap[&v]))
                    .collect(),
            ),
            answer_vars: self.answer_vars.iter().map(|&v| remap[&v]).collect(),
        }
    }

    /// A canonical structural key: atoms sorted under the compacted variable
    /// numbering. Two CQs with equal keys are identical up to atom order.
    /// (Not isomorphism-complete — used only for cheap deduplication.)
    pub fn dedup_key(&self) -> (Vec<QAtom>, Vec<Var>) {
        let c = self.compact();
        let mut atoms = c.atoms;
        atoms.sort();
        (atoms, c.answer_vars)
    }
}

impl std::fmt::Display for Cq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Ans(")?;
        for (i, v) in self.answer_vars.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", self.var_name(*v))?;
        }
        write!(f, ") :- ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}(", a.predicate)?;
            for (j, t) in a.args.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                match t {
                    Term::Var(v) => write!(f, "{}", self.var_name(*v))?,
                    Term::Const(c) => write!(f, "\"{c}\"")?,
                }
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A union of conjunctive queries `q₁(x̄) ∨ … ∨ qₙ(x̄)`. All disjuncts must
/// share the same arity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ucq {
    /// The disjuncts (nonempty).
    pub disjuncts: Vec<Cq>,
}

impl Ucq {
    /// Builds a UCQ; panics if empty or arities disagree.
    pub fn new(disjuncts: Vec<Cq>) -> Ucq {
        assert!(!disjuncts.is_empty(), "a UCQ has at least one disjunct");
        let n = disjuncts[0].arity();
        assert!(
            disjuncts.iter().all(|q| q.arity() == n),
            "UCQ disjuncts must share arity"
        );
        Ucq { disjuncts }
    }

    /// A single-disjunct UCQ.
    pub fn single(q: Cq) -> Ucq {
        Ucq { disjuncts: vec![q] }
    }

    /// Arity of the UCQ.
    pub fn arity(&self) -> usize {
        self.disjuncts[0].arity()
    }

    /// Whether the UCQ is Boolean.
    pub fn is_boolean(&self) -> bool {
        self.arity() == 0
    }

    /// The union of all disjunct schemas.
    pub fn schema(&self) -> Schema {
        let mut s = Schema::new();
        for q in &self.disjuncts {
            s = s.union(&q.schema());
        }
        s
    }

    /// Maximum number of variables in any disjunct (the paper's `n` when
    /// constructing finite witnesses).
    pub fn max_vars(&self) -> usize {
        self.disjuncts
            .iter()
            .map(|q| q.all_vars().len())
            .max()
            .unwrap_or(0)
    }
}

impl std::fmt::Display for Ucq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, q) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{q}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Cq {
        // Ans(x) :- R(x,y), S(y,"c")
        let (names, vs) = Cq::make_vars(&["x", "y"]);
        Cq::new(
            names,
            vec![
                QAtom::new(
                    Predicate::new("R"),
                    vec![Term::Var(vs[0]), Term::Var(vs[1])],
                ),
                QAtom::new(
                    Predicate::new("S"),
                    vec![Term::Var(vs[1]), Term::Const(Value::named("c"))],
                ),
            ],
            vec![vs[0]],
        )
    }

    #[test]
    fn vars_and_arity() {
        let q = sample();
        assert_eq!(q.arity(), 1);
        assert!(!q.is_boolean());
        assert_eq!(q.all_vars(), vec![Var(0), Var(1)]);
        assert_eq!(q.existential_vars(), vec![Var(1)]);
    }

    #[test]
    fn canonical_database_freezes_vars() {
        let q = sample();
        let (db, h) = q.canonical_database();
        assert_eq!(db.len(), 2);
        assert!(h[&Var(0)].is_null() && h[&Var(1)].is_null());
        assert_ne!(h[&Var(0)], h[&Var(1)]);
        assert!(db.dom_contains(Value::named("c")));
    }

    #[test]
    fn compact_renumbers() {
        let (names, vs) = Cq::make_vars(&["a", "b", "c"]);
        // Only use vars 0 and 2.
        let q = Cq::new(
            names,
            vec![QAtom::new(
                Predicate::new("R"),
                vec![Term::Var(vs[0]), Term::Var(vs[2])],
            )],
            vec![],
        );
        let c = q.compact();
        assert_eq!(c.all_vars(), vec![Var(0), Var(1)]);
        assert_eq!(c.var_name(Var(1)), "c");
    }

    #[test]
    fn display_is_readable() {
        let q = sample();
        assert_eq!(q.to_string(), "Ans(x) :- R(x,y), S(y,\"c\")");
    }

    #[test]
    #[should_panic(expected = "share arity")]
    fn ucq_arity_mismatch_panics() {
        let q0 = sample();
        let (names, _) = Cq::make_vars(&[]);
        let q1 = Cq::new(names, vec![QAtom::new(Predicate::new("P"), vec![])], vec![]);
        Ucq::new(vec![q0, q1]);
    }

    #[test]
    fn ucq_basics() {
        let u = Ucq::single(sample());
        assert_eq!(u.arity(), 1);
        assert_eq!(u.max_vars(), 2);
        assert_eq!(u.schema().max_arity(), 2);
    }

    #[test]
    fn dedup_key_ignores_atom_order_and_var_ids() {
        let (names, vs) = Cq::make_vars(&["x", "y"]);
        let a1 = QAtom::new(
            Predicate::new("R"),
            vec![Term::Var(vs[0]), Term::Var(vs[1])],
        );
        let a2 = QAtom::new(Predicate::new("P"), vec![Term::Var(vs[0])]);
        let q1 = Cq::new(names.clone(), vec![a1.clone(), a2.clone()], vec![]);
        let q2 = Cq::new(names, vec![a2, a1], vec![]);
        assert_eq!(q1.dedup_key(), q2.dedup_key());
    }
}
