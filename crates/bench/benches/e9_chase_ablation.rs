//! E9 — ablation: oblivious vs restricted chase on a workload where many
//! triggers are already satisfied by the data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtgd_bench::workloads::org_db;
use gtgd_chase::{chase, parse_tgds, restricted_chase, ChaseBudget};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_chase_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let sigma =
        parse_tgds("Emp(X) -> WorksIn(X,D). WorksIn(X,D) -> Dept(D). Dept(D) -> Audited(D)")
            .unwrap();
    for &n in &[50usize, 200] {
        let db = org_db(n);
        group.bench_with_input(BenchmarkId::new("oblivious", n), &db, |b, db| {
            b.iter(|| chase(db, &sigma, &ChaseBudget::unbounded()))
        });
        group.bench_with_input(BenchmarkId::new("restricted", n), &db, |b, db| {
            b.iter(|| restricted_chase(db, &sigma, &ChaseBudget::unbounded()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
