//! Concurrency hammer for the serve daemon: many client threads fire
//! mixed read/write scripts at one daemon over loopback, then the final
//! served answers must be *bit-identical* to a from-scratch
//! `Engine::prepare` evaluation over a chase of the final base set.
//!
//! Threads own disjoint atoms, so the write operations commute and the
//! final state is deterministic no matter how the daemon's write gate
//! interleaves them; what the test exercises is the snapshot-rewrite +
//! `Arc`-swap publication discipline under contention — readers must
//! never observe a half-applied write, and no acknowledged write may be
//! lost.

use gtgd::chase::{parse_tgds, ChaseBudget, ChaseRunner};
use gtgd::data::{GroundAtom, Instance};
use gtgd::query::{parse_cq, Engine};
use gtgd::storage::{save_snapshot, Client, Server};
use std::path::PathBuf;

const THREADS: usize = 16;

fn rules() -> &'static str {
    "Emp(X) -> WorksIn(X,D). WorksIn(X,D) -> Dept(D). Assigned(X,P) -> Proj(P)"
}

/// The base facts thread `t`'s script leaves behind when it finishes.
fn final_base_of_thread(t: usize) -> Vec<GroundAtom> {
    vec![
        GroundAtom::named("Emp", &[&format!("hm_t{t}_a")]),
        GroundAtom::named("Emp", &[&format!("hm_t{t}_c")]),
        GroundAtom::named("Assigned", &[&format!("hm_t{t}_a"), &format!("hm_proj{t}")]),
    ]
}

/// One client's script: inserts, interleaved queries, one retraction.
/// Every operation must be acknowledged; queries mid-stream just have to
/// succeed (their answers depend on the interleaving and are checked only
/// at the end, on the quiesced daemon).
fn run_script(t: usize, mut c: Client) {
    let a = format!("hm_t{t}_a");
    let b = format!("hm_t{t}_b");
    let cc = format!("hm_t{t}_c");
    c.insert(&format!("Emp({a})")).unwrap();
    c.query("Q(X) :- Emp(X)").unwrap();
    c.insert(&format!("Emp({b})")).unwrap();
    c.insert(&format!("Assigned({a}, hm_proj{t})")).unwrap();
    c.query("Q(X, P) :- Assigned(X, P)").unwrap();
    c.insert(&format!("Emp({cc})")).unwrap();
    c.retract(&format!("Emp({b})")).unwrap();
    c.query("Q(P) :- Proj(P)").unwrap();
}

#[test]
fn hammer_matches_single_shot_evaluation() {
    let tgds = parse_tgds(rules()).unwrap();
    let seed_base = vec![
        GroundAtom::named("Emp", &["hm_seed0"]),
        GroundAtom::named("Emp", &["hm_seed1"]),
    ];
    let m = ChaseRunner::new(&tgds)
        .budget(ChaseBudget::atoms(1_000_000))
        .maintain(&Instance::from_atoms(seed_base.clone()));
    let path: PathBuf =
        std::env::temp_dir().join(format!("gtgd-hammer-{}.gsnap", std::process::id()));
    save_snapshot(&path, &tgds, &m).unwrap();

    let server = Server::start(path.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let server_handle = std::thread::spawn(move || server.run());

    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || run_script(t, Client::connect(addr).unwrap()));
        }
    });

    // The deterministic final base: seed plus every thread's residue.
    let mut final_base = seed_base;
    for t in 0..THREADS {
        final_base.extend(final_base_of_thread(t));
    }
    let reference = ChaseRunner::new(&tgds)
        .budget(ChaseBudget::atoms(1_000_000))
        .maintain(&Instance::from_atoms(final_base));

    let queries = [
        "Q(X) :- Emp(X)",
        "Q(X, P) :- Assigned(X, P)",
        "Q(P) :- Proj(P)",
        "Q(X, D) :- Emp(X), WorksIn(X, D)",
    ];
    let expect: Vec<Vec<Vec<String>>> = queries
        .iter()
        .map(|q| {
            let cq = parse_cq(q).unwrap();
            let mut rows: Vec<Vec<String>> = Engine::prepare(&cq)
                .answers(reference.instance())
                .into_iter()
                .filter(|row| row.iter().all(|v| v.is_named()))
                .map(|row| row.iter().map(ToString::to_string).collect())
                .collect();
            rows.sort();
            rows
        })
        .collect();

    // The daemon sorts rows by interned-value order, the reference by
    // rendered string; normalize both to string order before comparing —
    // the *sets* must be bit-identical.
    let mut c = Client::connect(addr).unwrap();
    for (q, want) in queries.iter().zip(&expect) {
        let mut got = c.query(q).unwrap();
        got.sort();
        assert_eq!(&got, want, "daemon disagrees with single-shot run on {q}");
    }
    // Sanity on the workload shape: every WorksIn row is null-valued, so
    // the last query must certify nothing.
    assert!(expect[3].is_empty());
    assert!(!expect[0].is_empty());
    let stats = c.stats().unwrap();
    assert_eq!(stats["complete"], "true");
    c.shutdown().unwrap();
    server_handle.join().unwrap().unwrap();

    // Every acknowledged write reached the snapshot: a cold restart from
    // the file serves the same answers.
    let server = Server::start(path.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let server_handle = std::thread::spawn(move || server.run());
    let mut c = Client::connect(addr).unwrap();
    for (q, want) in queries.iter().zip(&expect) {
        let mut got = c.query(q).unwrap();
        got.sort();
        assert_eq!(&got, want, "restarted daemon disagrees on {q}");
    }
    c.shutdown().unwrap();
    server_handle.join().unwrap().unwrap();
    std::fs::remove_file(&path).ok();
}
