//! Regenerates the experiment tables (DESIGN.md §4 / EXPERIMENTS.md).
//!
//! Usage:
//! ```text
//! experiments            # run everything
//! experiments E4 E6      # run selected experiments
//! experiments --json out.json E1
//! ```

use gtgd_bench::{run_experiment, ExperimentTable};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--json" {
            json_path = args.get(i + 1).cloned();
            i += 2;
        } else {
            ids.push(args[i].clone());
            i += 1;
        }
    }
    if ids.is_empty() {
        ids = (1..=14).map(|i| format!("E{i}")).collect();
    }
    let mut tables: Vec<ExperimentTable> = Vec::new();
    for id in &ids {
        match run_experiment(id) {
            Some(t) => {
                println!("{}", t.render());
                tables.push(t);
            }
            None => eprintln!("unknown experiment id: {id}"),
        }
    }
    if let Some(path) = json_path {
        let mut f = std::fs::File::create(&path).expect("create json output");
        let body = serde_json::to_string_pretty(&tables).expect("serialize");
        f.write_all(body.as_bytes()).expect("write json");
        eprintln!("wrote {path}");
    }
}
