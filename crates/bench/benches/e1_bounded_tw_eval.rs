//! E1 — Prop 2.1: bounded-treewidth CQ evaluation scales polynomially in
//! `|D|` with the degree tracking `k + 1`; backtracking is the baseline.

use gtgd_bench::harness;
use gtgd_bench::workloads::{grid_db, grid_query};
use gtgd_query::decomp_eval::check_answer_decomposed;
use gtgd_query::holds_boolean;

fn main() {
    harness::group("e1_bounded_tw_eval");
    for &cols in &[20usize, 60, 180] {
        let db = grid_db(4, cols);
        for (name, q) in [
            ("tw1_path", grid_query(1, 4)),
            ("tw2_ladder", grid_query(2, 3)),
            ("tw3_grid", grid_query(3, 3)),
        ] {
            harness::case(&format!("dp_{name}/{cols}"), || {
                check_answer_decomposed(&q, &db, &[])
            });
            harness::case(&format!("backtrack_{name}/{cols}"), || {
                holds_boolean(&q, &db)
            });
        }
    }
}
