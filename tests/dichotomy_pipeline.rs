//! End-to-end checks of the dichotomy machinery: the clique reductions
//! (Theorem 5.13) against brute force on graph zoos, and the OMQ→CQS
//! reduction (Prop 5.8) on ontology workloads.

use gtgd::chase::{satisfies_all, ChaseBudget};
use gtgd::data::{GroundAtom, Instance, Value};
use gtgd::omq::grohe::{has_clique, validate_h0};
use gtgd::omq::reduction::{
    clique_to_cqs_instance, decide_clique_via_cqs, grid_cqs_family, marked_grid_cqs_family,
};
use gtgd::omq::{evaluate_omq, omq_to_cqs_database, EvalConfig, Omq};
use gtgd::treewidth::Graph;

/// Deterministic pseudo-random graph via a multiplicative hash.
fn pseudo_random_graph(n: usize, density_mod: u64, seed: u64) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let h = ((u as u64 * 2654435761) ^ (v as u64 * 40503) ^ seed).wrapping_mul(2654435761)
                >> 16;
            if h % 10 < density_mod {
                g.add_edge(u, v);
            }
        }
    }
    g
}

#[test]
fn clique_reduction_matches_brute_force_across_random_graphs() {
    for k in [2usize, 3] {
        let fam = grid_cqs_family(k);
        for seed in 0..6u64 {
            for n in [5usize, 7] {
                let g = pseudo_random_graph(n, 4 + seed % 3, seed);
                assert_eq!(
                    decide_clique_via_cqs(&g, k, &fam),
                    has_clique(&g, k),
                    "k={k} n={n} seed={seed}"
                );
            }
        }
    }
}

#[test]
fn marked_reduction_satisfies_constraints_and_matches() {
    let k = 3;
    let fam = marked_grid_cqs_family(k);
    for seed in 0..4u64 {
        let g = pseudo_random_graph(6, 5, seed * 7 + 1);
        let reduced = clique_to_cqs_instance(&g, k, &fam);
        assert!(
            satisfies_all(&reduced.grohe.instance, &fam.cqs.sigma),
            "D* |= Σ (Theorem 7.1(3)) seed={seed}"
        );
        assert_eq!(
            gtgd::query::ucq_holds_boolean(&fam.cqs.query, &reduced.grohe.instance),
            has_clique(&g, k),
            "seed={seed}"
        );
    }
}

#[test]
fn grohe_h0_projection_is_a_homomorphism() {
    let k = 2;
    let fam = grid_cqs_family(k);
    let g = pseudo_random_graph(6, 6, 99);
    let reduced = clique_to_cqs_instance(&g, k, &fam);
    // h0 maps D* onto a copy of D′ built from the same freezing.
    let d_prime: Instance = fam
        .p_prime
        .atoms
        .iter()
        .map(|a| a.ground(&reduced.frozen))
        .collect();
    let gd = &reduced.grohe;
    assert!(validate_h0(gd, &d_prime));
}

#[test]
fn omq_to_cqs_round_trip_on_ontology_workloads() {
    let sigma = gtgd::chase::parse_tgds(
        "Project(P) -> LedBy(P,M), Mgr(M). \
         Mgr(M) -> Clearance(M). \
         LedBy(P,M) -> Active(P)",
    )
    .unwrap();
    let q = Omq::full_schema(
        sigma.clone(),
        gtgd::query::parse_ucq("Q(P) :- Project(P), Active(P), LedBy(P,M), Clearance(M)").unwrap(),
    );
    for n in [3usize, 8, 15] {
        let db: Instance = (0..n)
            .map(|i| GroundAtom::named("Project", &[&format!("p{i}")]))
            .collect();
        let d_star = omq_to_cqs_database(&q, &db, &ChaseBudget::unbounded()).unwrap();
        assert!(satisfies_all(&d_star, &sigma), "Lemma 6.8(1)");
        let open = evaluate_omq(&q, &db, &EvalConfig::default());
        assert!(open.exact);
        let closed: std::collections::HashSet<Vec<Value>> =
            gtgd::query::evaluate_ucq(&q.query, &d_star)
                .into_iter()
                .filter(|t| t.iter().all(|v| db.dom_contains(*v)))
                .collect();
        assert_eq!(open.answers, closed, "Lemma 6.8(2), n={n}");
        assert_eq!(closed.len(), n, "every project is certain-active-cleared");
    }
}

#[test]
fn reduction_no_instance_on_empty_graph_families() {
    let fam = grid_cqs_family(3);
    // Triangle-free bipartite graphs never have 3-cliques.
    for n in [4usize, 6] {
        let mut g = Graph::new(n);
        for u in 0..n / 2 {
            for v in n / 2..n {
                g.add_edge(u, v);
            }
        }
        assert!(!decide_clique_via_cqs(&g, 3, &fam));
    }
}
