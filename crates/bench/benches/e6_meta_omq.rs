//! E6 — Theorem 5.1: deciding UCQ_k-equivalence of guarded OMQs
//! (the 2ExpTime meta problem, exercised on the Example 4.4 family).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtgd_chase::parse_tgds;
use gtgd_core::{omq_ucqk_equivalent, EvalConfig, GroundingPolicy, Omq};
use gtgd_query::parse_ucq;

fn example_4_4(extra: usize) -> Omq {
    let mut atoms = vec![
        "P(X2,X1)".to_string(),
        "P(X4,X1)".to_string(),
        "P(X2,X3)".to_string(),
        "P(X4,X3)".to_string(),
        "R1(X1)".to_string(),
        "R2(X2)".to_string(),
        "R3(X3)".to_string(),
        "R4(X4)".to_string(),
    ];
    for i in 0..extra {
        atoms.push(format!("S{i}(X1)"));
    }
    Omq::full_schema(
        parse_tgds("R2(X) -> R4(X)").unwrap(),
        parse_ucq(&format!("Q() :- {}", atoms.join(", "))).unwrap(),
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_meta_omq");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let cfg = EvalConfig::default();
    let policy = GroundingPolicy::default();
    for &extra in &[0usize, 2, 4] {
        let q = example_4_4(extra);
        group.bench_with_input(BenchmarkId::new("decide_ucq1_equiv", extra), &q, |b, q| {
            b.iter(|| omq_ucqk_equivalent(q, 1, &policy, &cfg))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
