//! The persistent snapshot format: a versioned, checksummed binary image
//! of a maintained chase fixpoint — interned symbols, the instance in
//! insertion order, sorted-index permutations, the dense dictionary and
//! tries, and the delta-chase fired set — written after saturation and
//! loaded with **no re-chase and no re-sort**.
//!
//! # Format
//!
//! ```text
//! magic    8 bytes   "GTGDSNAP"
//! version  u32 LE    SNAPSHOT_VERSION
//! length   u64 LE    payload byte count
//! checksum u64 LE    FNV-1a-64 over the payload only, 8-byte lanes
//! payload  ...       sections, in order:
//!   1. symbol table   names of every referenced symbol, ascending old id
//!   2. null fence     largest persisted null label
//!   3. TGDs           structural (var names + body/head atoms), not text
//!   4. instance       atoms in insertion order
//!   5. sorted indexes exported `SortedIndexCache` permutations
//!   6. dense          dictionary, encoded tables, trie permutations
//!   7. maintain       completeness, atom cap, then base facts and alive
//!                     firings (kept last so a loader can carve them off
//!                     as raw bytes and defer their decode to thaw)
//! ```
//!
//! The checksum covers the payload only, so a version bump reports
//! [`SnapshotError::UnsupportedVersion`] rather than a spurious mismatch.
//!
//! # Why loading is cheap
//!
//! Every section is designed so load cost is dominated by the sequential
//! read: symbols are interned in ascending old-id order (one pass), the
//! instance adopts the decoded atom vector wholesale (its hash indexes
//! and columnar arenas mirror lazily from the atoms on first demand —
//! [`Instance::from_unique_atoms`]), index permutations and dense tries
//! are *installed* — validated in linear time by
//! [`Instance::install_sorted_indexes`] / [`Instance::install_dense`],
//! never re-sorted — and the fired set is kept frozen **as raw bytes**
//! until the first write, when it is decoded and rebuilt by hashing
//! firing records ([`MaintainedInstance::from_parts`]), never by
//! re-running the chase.
//! Sections that fail their validation (e.g. a permutation that is not
//! sorted under this process's interning order) are skipped and simply
//! rebuild lazily on first use; sections whose bytes are damaged fail the
//! checksum and the whole load fails closed.

use crate::bytes::{fnv1a64x8, Reader, Writer};
use gtgd_chase::{FiringExport, MaintainExport, MaintainedInstance, Tgd};
use gtgd_data::{
    DenseExport, DenseTableExport, DenseTrieExport, GroundAtom, IndexExport, Instance, Predicate,
    Symbol, Value,
};
use gtgd_query::{QAtom, Term, Var};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::io;
use std::path::Path;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"GTGDSNAP";

/// Current format version. Bumped on any incompatible layout change;
/// readers refuse other versions outright.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Header size: magic + version + payload length + checksum.
const HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// Why a snapshot could not be written or read back. Loading fails
/// *closed*: a damaged file produces one of these, never a silently wrong
/// instance.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem-level failure.
    Io(io::Error),
    /// The file does not begin with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The file's version is not [`SNAPSHOT_VERSION`].
    UnsupportedVersion(u32),
    /// The payload bytes do not hash to the header checksum.
    ChecksumMismatch,
    /// The file ends before the header-declared payload does.
    Truncated,
    /// The payload passed the checksum but does not decode to a
    /// consistent snapshot (bad tag, dangling reference, inconsistent
    /// fired set, ...).
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a gtgd snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot payload fails its checksum"),
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotError::Malformed(why) => write!(f, "malformed snapshot payload: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

/// A snapshot restored into this process: the rule set, the chased
/// instance (query-ready immediately), the still-frozen fired set
/// (thawed into a [`MaintainedInstance`] on demand), and counts of how
/// many persisted index sections survived validation and were installed
/// (the rest rebuild lazily on first use).
///
/// The split keeps the load path sequential: queries only need the
/// instance, so [`load_snapshot`] stops after decode + index install and
/// keeps the checksummed base/firings section as raw bytes. Decoding the
/// fired set and rebuilding the dependency index that `insert`/`retract`
/// need (per-firing allocation and hashing proportional to the fired
/// set, often the bulk of the file) is paid once, by the first caller of
/// [`LoadedSnapshot::to_maintained`] or
/// [`LoadedSnapshot::into_maintained`] — off the query hot path.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// The persisted rule set, structurally reconstructed.
    pub tgds: Vec<Tgd>,
    /// The chased fixpoint, atoms in persisted insertion order.
    instance: Instance,
    /// Interned symbol table, needed to decode the frozen section.
    syms: Vec<Symbol>,
    /// Whether the persisted chase ran to completion.
    complete: bool,
    /// Persisted chase budget cap.
    max_atoms: Option<usize>,
    /// The whole snapshot image, kept so the undecoded base + firings
    /// tail can be read in place (zero copies on the load path). Covered
    /// by the checksum, so corruption was already caught at load;
    /// structural validation happens at thaw.
    image: Vec<u8>,
    /// Byte offset of the frozen base + firings tail within `image`.
    frozen_from: usize,
    /// Sorted-index permutations installed without re-sorting.
    pub indexes_installed: usize,
    /// Dense encoded tables installed without re-encoding.
    pub dense_tables_installed: usize,
    /// Dense tries installed without re-sorting.
    pub dense_tries_installed: usize,
}

impl LoadedSnapshot {
    /// The restored fixpoint — everything queries need.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Whether the persisted chase ran to completion (certain answers
    /// are exact).
    pub fn complete(&self) -> bool {
        self.complete
    }

    /// Decodes the frozen base + firings section. Fails closed on any
    /// structural damage the checksum could not classify.
    fn decode_export(&self) -> Result<MaintainExport, SnapshotError> {
        let mut r = Reader::new(&self.image[self.frozen_from..]);
        let syms = &self.syms;
        let nbase = r.len().map_err(mal)?;
        let mut base = Vec::with_capacity(nbase);
        for _ in 0..nbase {
            base.push(get_atom(&mut r, syms).map_err(mal)?);
        }
        let nfirings = r.len().map_err(mal)?;
        let mut firings = Vec::with_capacity(nfirings);
        for _ in 0..nfirings {
            let tgd = r.len().map_err(mal)?;
            let nkey = r.len().map_err(mal)?;
            let mut key = Vec::with_capacity(nkey);
            for _ in 0..nkey {
                key.push(get_value(&mut r, syms).map_err(mal)?);
            }
            let nproducts = r.len().map_err(mal)?;
            let mut products = Vec::with_capacity(nproducts);
            for _ in 0..nproducts {
                products.push(get_atom(&mut r, syms).map_err(mal)?);
            }
            firings.push(FiringExport { tgd, key, products });
        }
        r.finish().map_err(mal)?;
        Ok(MaintainExport {
            base,
            firings,
            complete: self.complete,
            max_atoms: self.max_atoms,
        })
    }

    /// Thaws a maintainable copy: decodes the frozen fired set, validates
    /// it against a clone of the instance, and rebuilds the dependency
    /// index ([`MaintainedInstance::from_parts`] — hashing, no chase).
    /// Any inconsistency fails closed as [`SnapshotError::Malformed`].
    pub fn to_maintained(&self) -> Result<MaintainedInstance, SnapshotError> {
        let export = self.decode_export()?;
        MaintainedInstance::from_parts(&self.tgds, &export, self.instance.clone())
            .map_err(SnapshotError::Malformed)
    }

    /// Like [`LoadedSnapshot::to_maintained`], but consumes the snapshot
    /// and thaws in place without cloning the instance.
    pub fn into_maintained(self) -> Result<MaintainedInstance, SnapshotError> {
        let export = self.decode_export()?;
        MaintainedInstance::from_parts(&self.tgds, &export, self.instance)
            .map_err(SnapshotError::Malformed)
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Symbol → local index map used while encoding. Local indices are
/// positions in the persisted symbol table, which lists names in
/// ascending old-id order — so a fresh process that interns them in file
/// order assigns ascending (hence order-preserving) new ids, and the
/// persisted sorted permutations validate and install.
struct SymTable {
    index: HashMap<Symbol, u64>,
}

impl SymTable {
    fn of(s: Symbol) -> u64 {
        // Used only through `build`, which walks every structure the
        // encoder serializes, so lookups cannot miss.
        s.id().into()
    }

    fn build(tgds: &[Tgd], atoms: &Instance, dense: &DenseExport) -> (Vec<Symbol>, SymTable) {
        let mut set: BTreeSet<Symbol> = BTreeSet::new();
        let see_value = |set: &mut BTreeSet<Symbol>, v: Value| {
            if let Value::Named(s) = v {
                set.insert(s);
            }
        };
        for t in tgds {
            for a in t.body.iter().chain(t.head.iter()) {
                set.insert(a.predicate.0);
                for arg in &a.args {
                    if let Term::Const(v) = arg {
                        see_value(&mut set, *v);
                    }
                }
            }
        }
        for a in atoms.iter() {
            set.insert(a.predicate.0);
            for &v in &a.args {
                see_value(&mut set, v);
            }
        }
        for &v in &dense.dict {
            see_value(&mut set, v);
        }
        for t in &dense.tables {
            set.insert(t.predicate.0);
        }
        for t in &dense.tries {
            set.insert(t.predicate.0);
        }
        // BTreeSet iterates ascending by Symbol's id-derived order, which
        // is exactly the "ascending old id" the format requires.
        let symbols: Vec<Symbol> = set.into_iter().collect();
        let index = symbols
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u64))
            .collect();
        (symbols, SymTable { index })
    }

    fn local(&self, s: Symbol) -> u64 {
        *self
            .index
            .get(&s)
            .unwrap_or_else(|| panic!("symbol {} not collected for snapshot", Self::of(s)))
    }
}

fn put_value(w: &mut Writer, syms: &SymTable, v: Value) {
    match v {
        Value::Named(s) => {
            w.u8(0);
            w.u64(syms.local(s));
        }
        Value::Null(label) => {
            w.u8(1);
            w.u64(label);
        }
    }
}

fn put_atom(w: &mut Writer, syms: &SymTable, a: &GroundAtom) {
    w.u64(syms.local(a.predicate.0));
    w.len(a.args.len());
    for &v in &a.args {
        put_value(w, syms, v);
    }
}

fn put_qatoms(w: &mut Writer, syms: &SymTable, atoms: &[QAtom]) {
    w.len(atoms.len());
    for a in atoms {
        w.u64(syms.local(a.predicate.0));
        w.len(a.args.len());
        for t in &a.args {
            match t {
                Term::Var(v) => {
                    w.u8(0);
                    w.u32(v.0);
                }
                Term::Const(c) => {
                    w.u8(1);
                    put_value(w, syms, *c);
                }
            }
        }
    }
}

fn max_null_label(atoms: &Instance, dense: &DenseExport, maintain: &MaintainExport) -> u64 {
    let mut max = 0u64;
    let mut see = |v: Value| {
        if let Value::Null(label) = v {
            max = max.max(label);
        }
    };
    for a in atoms.iter() {
        a.args.iter().copied().for_each(&mut see);
    }
    dense.dict.iter().copied().for_each(&mut see);
    for f in &maintain.firings {
        f.key.iter().copied().for_each(&mut see);
        for p in &f.products {
            p.args.iter().copied().for_each(&mut see);
        }
    }
    max
}

/// Serializes `(tgds, m)` into complete snapshot bytes (header +
/// payload). Pure encoding; [`save_snapshot`] adds the atomic file dance.
pub fn snapshot_bytes(tgds: &[Tgd], m: &MaintainedInstance) -> Vec<u8> {
    let instance = m.instance();
    let indexes = instance.export_sorted_indexes();
    let dense = instance.export_dense();
    let maintain = m.export_state();
    let (symbols, syms) = SymTable::build(tgds, instance, &dense);

    let mut p = Writer::new();
    // 1. Symbol table, ascending old id.
    p.len(symbols.len());
    for s in &symbols {
        p.str(&s.name());
    }
    // 2. Null fence.
    p.u64(max_null_label(instance, &dense, &maintain));
    // 3. TGDs, structurally. `Display` text is not a reliable round trip
    //    (quoting, normalization); variable tables plus raw atoms are.
    p.len(tgds.len());
    for t in tgds {
        let names = t.var_name_table();
        p.len(names.len());
        for n in &names {
            p.str(n);
        }
        put_qatoms(&mut p, &syms, &t.body);
        put_qatoms(&mut p, &syms, &t.head);
    }
    // 4. Instance atoms in insertion order (arena row ids are positional,
    //    so order is load-bearing for the index sections).
    p.len(instance.len());
    for a in instance.iter() {
        put_atom(&mut p, &syms, a);
    }
    // 5. Sorted-index permutations.
    p.len(indexes.len());
    for e in &indexes {
        p.u64(syms.local(e.predicate.0));
        p.u16(e.arity);
        p.len(e.order.len());
        for &c in &e.order {
            p.u16(c);
        }
        p.len(e.perm.len());
        for &row in &e.perm {
            p.u32(row);
        }
    }
    // 6. Dense dictionary, encoded tables, trie permutations, counters.
    p.len(dense.dict.len());
    for &v in &dense.dict {
        put_value(&mut p, &syms, v);
    }
    p.len(dense.tables.len());
    for t in &dense.tables {
        p.u64(syms.local(t.predicate.0));
        p.u16(t.arity);
        p.len(t.cols.len());
        for col in &t.cols {
            p.len(col.len());
            for &code in col {
                p.u32(code);
            }
        }
    }
    p.len(dense.tries.len());
    for t in &dense.tries {
        p.u64(syms.local(t.predicate.0));
        p.u16(t.arity);
        p.len(t.order.len());
        for &c in &t.order {
            p.u16(c);
        }
        p.len(t.perm.len());
        for &row in &t.perm {
            p.u32(row);
        }
    }
    p.u64(dense.dict_hits as u64);
    p.u64(dense.dict_misses as u64);
    p.u64(dense.remaps as u64);
    // 7. Maintain state: completeness and cap first (cheap scalars the
    //    loader wants eagerly), then base facts and alive firings — last
    //    in the payload on purpose, so the loader can keep them as one
    //    raw byte run and defer their decode to thaw time.
    p.bool(maintain.complete);
    match maintain.max_atoms {
        None => p.u8(0),
        Some(n) => {
            p.u8(1);
            p.u64(n as u64);
        }
    }
    p.len(maintain.base.len());
    for a in &maintain.base {
        put_atom(&mut p, &syms, a);
    }
    p.len(maintain.firings.len());
    for f in &maintain.firings {
        p.len(f.tgd);
        p.len(f.key.len());
        for &v in &f.key {
            put_value(&mut p, &syms, v);
        }
        p.len(f.products.len());
        for a in &f.products {
            put_atom(&mut p, &syms, a);
        }
    }

    let mut out = Vec::with_capacity(HEADER_LEN + p.buf.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(p.buf.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64x8(&p.buf).to_le_bytes());
    out.extend_from_slice(&p.buf);
    out
}

/// Writes a snapshot of `(tgds, m)` to `path` atomically: the bytes go to
/// a same-directory temp file first, then `rename` publishes them — a
/// crash mid-write leaves the previous snapshot intact, and a concurrent
/// loader sees either the old file or the new one, never a torn mix.
pub fn save_snapshot(
    path: &Path,
    tgds: &[Tgd],
    m: &MaintainedInstance,
) -> Result<(), SnapshotError> {
    let bytes = snapshot_bytes(tgds, m);
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "snapshot".to_owned());
    tmp_name.push_str(&format!(".tmp{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

fn mal(e: String) -> SnapshotError {
    SnapshotError::Malformed(e)
}

fn get_value(r: &mut Reader<'_>, syms: &[Symbol]) -> Result<Value, String> {
    match r.u8()? {
        0 => {
            let i = usize::try_from(r.u64()?).map_err(|_| "symbol index overflow".to_owned())?;
            syms.get(i)
                .map(|&s| Value::Named(s))
                .ok_or_else(|| format!("symbol index {i} out of range ({} symbols)", syms.len()))
        }
        1 => Ok(Value::Null(r.u64()?)),
        t => Err(format!("bad value tag {t}")),
    }
}

fn get_pred(r: &mut Reader<'_>, syms: &[Symbol]) -> Result<Predicate, String> {
    let i = usize::try_from(r.u64()?).map_err(|_| "symbol index overflow".to_owned())?;
    syms.get(i)
        .map(|&s| Predicate(s))
        .ok_or_else(|| format!("predicate symbol index {i} out of range"))
}

fn get_atom(r: &mut Reader<'_>, syms: &[Symbol]) -> Result<GroundAtom, String> {
    let predicate = get_pred(r, syms)?;
    let arity = r.len()?;
    let mut args = Vec::with_capacity(arity);
    for _ in 0..arity {
        args.push(get_value(r, syms)?);
    }
    Ok(GroundAtom::new(predicate, args))
}

fn get_qatoms(r: &mut Reader<'_>, syms: &[Symbol], nvars: usize) -> Result<Vec<QAtom>, String> {
    let count = r.len()?;
    let mut atoms = Vec::with_capacity(count);
    for _ in 0..count {
        let predicate = get_pred(r, syms)?;
        let arity = r.len()?;
        let mut args = Vec::with_capacity(arity);
        for _ in 0..arity {
            match r.u8()? {
                0 => {
                    let v = r.u32()?;
                    if v as usize >= nvars {
                        return Err(format!("variable {v} has no name ({nvars} names)"));
                    }
                    args.push(Term::Var(Var(v)));
                }
                1 => args.push(Term::Const(get_value(r, syms)?)),
                t => return Err(format!("bad term tag {t}")),
            }
        }
        atoms.push(QAtom::new(predicate, args));
    }
    Ok(atoms)
}

fn get_u16s(r: &mut Reader<'_>) -> Result<Vec<u16>, String> {
    let n = r.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u16()?);
    }
    Ok(out)
}

fn get_u32s(r: &mut Reader<'_>) -> Result<Vec<u32>, String> {
    let n = r.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u32()?);
    }
    Ok(out)
}

/// Restores a snapshot from in-memory bytes. See [`load_snapshot`] for
/// the file-path wrapper and the load pipeline description. The bytes
/// are copied once (the result owns its image); loading from a file
/// moves the read buffer straight in, with no copy at all.
pub fn load_snapshot_bytes(bytes: &[u8]) -> Result<LoadedSnapshot, SnapshotError> {
    load_snapshot_owned(bytes.to_vec())
}

/// The owned-buffer load pipeline behind [`load_snapshot`] and
/// [`load_snapshot_bytes`]: the image moves into the result so the
/// frozen fired-set tail is referenced in place, never copied.
fn load_snapshot_owned(image: Vec<u8>) -> Result<LoadedSnapshot, SnapshotError> {
    let bytes: &[u8] = &image;
    // Framing. A short prefix that already disagrees with the magic is
    // BadMagic; a short prefix that agrees so far is Truncated.
    let magic_avail = bytes.len().min(SNAPSHOT_MAGIC.len());
    if bytes[..magic_avail] != SNAPSHOT_MAGIC[..magic_avail] {
        return Err(SnapshotError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let payload_len =
        usize::try_from(payload_len).map_err(|_| mal("payload length overflow".to_owned()))?;
    let checksum = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let rest = &bytes[HEADER_LEN..];
    if rest.len() < payload_len {
        return Err(SnapshotError::Truncated);
    }
    if rest.len() > payload_len {
        return Err(mal(format!(
            "{} byte(s) beyond the declared payload",
            rest.len() - payload_len
        )));
    }
    let payload = &rest[..payload_len];
    if fnv1a64x8(payload) != checksum {
        return Err(SnapshotError::ChecksumMismatch);
    }

    let mut r = Reader::new(payload);
    // 1. Symbols: interning in file order (ascending old id) gives the
    //    new ids the same relative order whenever the names are new to
    //    this process, which is what lets the persisted sort orders
    //    validate below.
    let nsyms = r.len().map_err(mal)?;
    let mut syms = Vec::with_capacity(nsyms);
    for _ in 0..nsyms {
        syms.push(Symbol::new(&r.str().map_err(mal)?));
    }
    // 2. Null fence: persisted labels must never be re-minted by this
    //    process's chase.
    Value::reserve_null_labels(r.u64().map_err(mal)?);
    // 3. TGDs.
    let ntgds = r.len().map_err(mal)?;
    let mut tgds = Vec::with_capacity(ntgds);
    for _ in 0..ntgds {
        let nnames = r.len().map_err(mal)?;
        let mut names = Vec::with_capacity(nnames);
        for _ in 0..nnames {
            names.push(r.str().map_err(mal)?);
        }
        let body = get_qatoms(&mut r, &syms, nnames).map_err(mal)?;
        let head = get_qatoms(&mut r, &syms, nnames).map_err(mal)?;
        if head.is_empty() {
            return Err(mal("TGD with an empty head".to_owned()));
        }
        tgds.push(Tgd::new(names, body, head));
    }
    // 4. Instance atoms, insertion order.
    let natoms = r.len().map_err(mal)?;
    let mut atoms = Vec::with_capacity(natoms);
    for _ in 0..natoms {
        atoms.push(get_atom(&mut r, &syms).map_err(mal)?);
    }
    // 5. Sorted indexes.
    let nindexes = r.len().map_err(mal)?;
    let mut indexes = Vec::with_capacity(nindexes);
    for _ in 0..nindexes {
        let predicate = get_pred(&mut r, &syms).map_err(mal)?;
        let arity = r.u16().map_err(mal)?;
        let order = get_u16s(&mut r).map_err(mal)?;
        let perm = get_u32s(&mut r).map_err(mal)?;
        indexes.push(IndexExport {
            predicate,
            arity,
            order,
            perm,
        });
    }
    // 6. Dense.
    let ndict = r.len().map_err(mal)?;
    let mut dict = Vec::with_capacity(ndict);
    for _ in 0..ndict {
        dict.push(get_value(&mut r, &syms).map_err(mal)?);
    }
    let ntables = r.len().map_err(mal)?;
    let mut tables = Vec::with_capacity(ntables);
    for _ in 0..ntables {
        let predicate = get_pred(&mut r, &syms).map_err(mal)?;
        let arity = r.u16().map_err(mal)?;
        let ncols = r.len().map_err(mal)?;
        let mut cols = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            cols.push(get_u32s(&mut r).map_err(mal)?);
        }
        tables.push(DenseTableExport {
            predicate,
            arity,
            cols,
        });
    }
    let ntries = r.len().map_err(mal)?;
    let mut tries = Vec::with_capacity(ntries);
    for _ in 0..ntries {
        let predicate = get_pred(&mut r, &syms).map_err(mal)?;
        let arity = r.u16().map_err(mal)?;
        let order = get_u16s(&mut r).map_err(mal)?;
        let perm = get_u32s(&mut r).map_err(mal)?;
        tries.push(DenseTrieExport {
            predicate,
            arity,
            order,
            perm,
        });
    }
    let dict_hits = r.u64().map_err(mal)? as usize;
    let dict_misses = r.u64().map_err(mal)? as usize;
    let remaps = r.u64().map_err(mal)? as usize;
    let dense = DenseExport {
        dict,
        tables,
        tries,
        dict_hits,
        dict_misses,
        remaps,
    };
    // 7. Maintain state: scalars eagerly; the base + firings tail stays
    //    as one raw byte run (already checksummed) so materializing a
    //    fired set that can dwarf the instance is deferred to thaw.
    let complete = r.bool().map_err(mal)?;
    let max_atoms = match r.u8().map_err(mal)? {
        0 => None,
        1 => Some(r.u64().map_err(mal)? as usize),
        t => return Err(mal(format!("bad max_atoms tag {t}"))),
    };
    let frozen_from = image.len() - r.rest().len();

    // Rebuild: adopt the atom vector, install what validates. The
    // persisted atom section came from an instance, so it is
    // duplicate-free and the trusted bulk constructor applies — the
    // instance's hash indexes and columnar arenas mirror lazily from the
    // atoms on first demand, off the load path.
    // The fired set stays frozen in byte form — queries never touch it,
    // and the first writer pays the decode + dependency-index rebuild via
    // `to_maintained`/`into_maintained`, which is also where fired-set
    // damage and inconsistencies fail closed: an inconsistent dependency
    // index would make later retractions silently wrong.
    let instance = Instance::from_unique_atoms(atoms);
    let indexes_installed = instance.install_sorted_indexes(&indexes);
    let (dense_tables_installed, dense_tries_installed) = instance.install_dense(&dense);
    Ok(LoadedSnapshot {
        tgds,
        instance,
        syms,
        complete,
        max_atoms,
        image,
        frozen_from,
        indexes_installed,
        dense_tables_installed,
        dense_tries_installed,
    })
}

/// Reads and restores a snapshot file. The load pipeline is: validate
/// framing (magic, version, length, checksum) → intern symbols → fence
/// nulls → rebuild TGDs → append instance atoms in insertion order →
/// install sorted indexes and dense state (validated, never re-sorted).
/// The result is query-ready; thawing the fired set for writes is
/// deferred to [`LoadedSnapshot::to_maintained`].
pub fn load_snapshot(path: &Path) -> Result<LoadedSnapshot, SnapshotError> {
    load_snapshot_owned(std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtgd_chase::{parse_tgds, ChaseBudget, ChaseRunner};
    use gtgd_query::{instance_isomorphic, parse_cq, Engine};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "gtgd-snap-test-{}-{}-{tag}.gsnap",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn org_fixture() -> (Vec<Tgd>, MaintainedInstance) {
        let tgds =
            parse_tgds("Emp(X) -> WorksIn(X,D). WorksIn(X,D) -> Dept(D). Dept(D) -> HasHead(D,H)")
                .unwrap();
        let db = Instance::from_atoms([
            GroundAtom::named("Emp", &["ann"]),
            GroundAtom::named("Emp", &["bob"]),
        ]);
        let m = ChaseRunner::new(&tgds)
            .budget(ChaseBudget::atoms(1_000_000))
            .maintain(&db);
        (tgds, m)
    }

    #[test]
    fn snapshot_file_round_trips_and_keeps_maintaining() {
        let (tgds, mut m) = org_fixture();
        // Touch the index layers so there is real state to persist.
        let q = parse_cq("Q(X) :- Emp(X), WorksIn(X,D)").unwrap();
        let before = Engine::prepare(&q).answers(m.instance());
        let path = temp_path("roundtrip");
        save_snapshot(&path, &tgds, &m).unwrap();
        let loaded = load_snapshot(&path).unwrap();
        assert_eq!(loaded.tgds.len(), tgds.len());
        assert!(instance_isomorphic(m.instance(), loaded.instance()));
        // In-process ids are unchanged, so answers are bit-identical.
        assert_eq!(Engine::prepare(&q).answers(loaded.instance()), before);
        // The restored fixpoint keeps maintaining: thaw the fired set,
        // then the same mutation on both sides stays isomorphic.
        let mut back = loaded.into_maintained().unwrap();
        let carol = GroundAtom::named("Emp", &["carol"]);
        let ann = GroundAtom::named("Emp", &["ann"]);
        m.insert([carol.clone()]);
        m.retract([ann.clone()]);
        back.insert([carol]);
        back.retract([ann]);
        assert!(instance_isomorphic(m.instance(), back.instance()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn saved_indexes_install_in_process() {
        let (tgds, m) = org_fixture();
        // Build a sorted index and a dense trie before saving.
        m.instance()
            .sorted_permutation(gtgd_data::Predicate(Symbol::new("WorksIn")), 2, &[1, 0]);
        m.instance()
            .dense_snapshot(&[(gtgd_data::Predicate(Symbol::new("WorksIn")), 2, &[0, 1])]);
        let bytes = snapshot_bytes(&tgds, &m);
        let loaded = load_snapshot_bytes(&bytes).unwrap();
        // Same process → same interning order → every persisted section
        // validates and installs.
        assert_eq!(loaded.indexes_installed, 1);
        assert!(loaded.dense_tables_installed >= 1);
        assert_eq!(loaded.dense_tries_installed, 1);
    }

    #[test]
    fn thaw_validates_the_fired_set() {
        let (tgds, m) = org_fixture();
        let bytes = snapshot_bytes(&tgds, &m);
        let loaded = load_snapshot_bytes(&bytes).unwrap();
        // Non-consuming thaw validates and leaves the snapshot usable.
        let thawed = loaded.to_maintained().unwrap();
        assert!(instance_isomorphic(m.instance(), thawed.instance()));
        assert!(instance_isomorphic(m.instance(), loaded.instance()));
        // A fired set that no longer matches the rules fails closed.
        let mut broken = load_snapshot_bytes(&bytes).unwrap();
        broken.tgds.pop();
        assert!(matches!(
            broken.into_maintained(),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn framing_errors_are_precise() {
        let (tgds, m) = org_fixture();
        let bytes = snapshot_bytes(&tgds, &m);

        assert!(matches!(
            load_snapshot_bytes(b"NOTASNAP"),
            Err(SnapshotError::BadMagic)
        ));
        assert!(matches!(
            load_snapshot_bytes(&bytes[..5]),
            Err(SnapshotError::Truncated)
        ));
        assert!(matches!(
            load_snapshot_bytes(&bytes[..bytes.len() - 3]),
            Err(SnapshotError::Truncated)
        ));

        // Version bump → UnsupportedVersion, not ChecksumMismatch: the
        // checksum covers the payload only.
        let mut bumped = bytes.clone();
        bumped[8] = bumped[8].wrapping_add(1);
        assert!(matches!(
            load_snapshot_bytes(&bumped),
            Err(SnapshotError::UnsupportedVersion(v)) if v == SNAPSHOT_VERSION + 1
        ));

        // A flipped payload byte fails the checksum.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xff;
        assert!(matches!(
            load_snapshot_bytes(&corrupt),
            Err(SnapshotError::ChecksumMismatch)
        ));

        // Trailing garbage past the declared payload is malformed.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(
            load_snapshot_bytes(&padded),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn save_is_atomic_rename_over_existing() {
        let (tgds, mut m) = org_fixture();
        let path = temp_path("atomic");
        save_snapshot(&path, &tgds, &m).unwrap();
        let first = std::fs::read(&path).unwrap();
        m.insert([GroundAtom::named("Emp", &["dora"])]);
        save_snapshot(&path, &tgds, &m).unwrap();
        let second = std::fs::read(&path).unwrap();
        assert_ne!(first, second, "rewrite replaced the file in place");
        // No temp litter left behind.
        let dir = path.parent().unwrap();
        let stem = path.file_name().unwrap().to_string_lossy().into_owned();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                let n = e.file_name().to_string_lossy().into_owned();
                n.starts_with(&stem) && n != stem
            })
            .collect();
        assert!(leftovers.is_empty(), "temp files linger: {leftovers:?}");
        load_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();
    }
}
