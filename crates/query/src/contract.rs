//! Contractions and specializations of CQs (Section 4.2 / Appendix C.1).
//!
//! A *contraction* of `q(x̄)` identifies variables; identifying an answer
//! variable `x` with a non-answer variable `y` yields `x`, and identifying
//! two answer variables is not allowed. A *specialization* of `q` is a pair
//! `(p, V)` with `p` a contraction and `x̄ ⊆ V ⊆ var(p)` (Definition C.1).

use crate::cq::{Cq, Var};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Safety cap on contraction enumeration: the number of contractions is the
/// Bell number of the variable count, so we refuse to enumerate beyond this
/// many variables rather than silently hang.
pub const MAX_CONTRACTION_VARS: usize = 12;

/// Merges variable `from` into variable `into` (the pair must be mergeable:
/// not both answer variables). Returns the contracted CQ (not compacted).
pub fn merge_vars(q: &Cq, into: Var, from: Var) -> Cq {
    let into_ans = q.answer_vars.contains(&into);
    let from_ans = q.answer_vars.contains(&from);
    assert!(
        !(into_ans && from_ans) || into == from,
        "cannot identify two answer variables"
    );
    // The representative must be the answer variable if one is involved.
    let (keep, drop) = if from_ans && !into_ans {
        (from, into)
    } else {
        (into, from)
    };
    q.map_vars(|v| if v == drop { keep } else { v })
}

/// All contractions of `q`, including `q` itself, deduplicated by structural
/// key and compacted. Panics if `q` has more than [`MAX_CONTRACTION_VARS`]
/// variables.
pub fn contractions(q: &Cq) -> Vec<Cq> {
    let vars = q.all_vars();
    assert!(
        vars.len() <= MAX_CONTRACTION_VARS,
        "refusing to enumerate contractions of a CQ with {} variables (cap {})",
        vars.len(),
        MAX_CONTRACTION_VARS
    );
    let answer: HashSet<Var> = q.answer_vars.iter().copied().collect();
    // Enumerate set partitions with at most one answer variable per class.
    let mut results: Vec<Cq> = Vec::new();
    let mut seen: HashSet<(Vec<crate::cq::QAtom>, Vec<Var>)> = HashSet::new();
    let mut classes: Vec<Vec<Var>> = Vec::new();
    partition_rec(&vars, 0, &answer, &mut classes, &mut |classes| {
        let mut remap: HashMap<Var, Var> = HashMap::new();
        for class in classes {
            // Representative: the answer variable if present, else the first.
            let rep = class
                .iter()
                .copied()
                .find(|v| answer.contains(v))
                .unwrap_or(class[0]);
            for &v in class {
                remap.insert(v, rep);
            }
        }
        let contracted = q.map_vars(|v| remap[&v]).compact();
        if seen.insert(contracted.dedup_key()) {
            results.push(contracted);
        }
    });
    results
}

fn partition_rec(
    vars: &[Var],
    i: usize,
    answer: &HashSet<Var>,
    classes: &mut Vec<Vec<Var>>,
    emit: &mut impl FnMut(&[Vec<Var>]),
) {
    if i == vars.len() {
        emit(classes);
        return;
    }
    let v = vars[i];
    let v_is_answer = answer.contains(&v);
    for ci in 0..classes.len() {
        if v_is_answer && classes[ci].iter().any(|u| answer.contains(u)) {
            continue; // two answer variables may not be identified
        }
        classes[ci].push(v);
        partition_rec(vars, i + 1, answer, classes, emit);
        classes[ci].pop();
    }
    classes.push(vec![v]);
    partition_rec(vars, i + 1, answer, classes, emit);
    classes.pop();
}

/// Lemma D.3: if `I |= q(ā)` (with `ā` distinct constants), some
/// contraction `q_c` of `q` satisfies `I |=io q_c(ā)` — witnessed here by
/// returning such a contraction, or `None` when `ā ∉ q(I)`.
pub fn injective_contraction(
    q: &Cq,
    i: &gtgd_data::Instance,
    answer: &[gtgd_data::Value],
) -> Option<Cq> {
    // Take any witnessing homomorphism and contract variables that share an
    // image; the induced match of the contraction is injective. Repeat on
    // the contraction until a |=io witness emerges (termination: variable
    // count strictly decreases).
    let mut seen_answers = HashSet::new();
    assert!(
        answer.iter().all(|&c| seen_answers.insert(c)),
        "Lemma D.3 requires a tuple of distinct constants"
    );
    let mut current = q.compact();
    loop {
        let fixed: Vec<(Var, gtgd_data::Value)> = current
            .answer_vars
            .iter()
            .copied()
            .zip(answer.iter().copied())
            .collect();
        let h = crate::hom::HomSearch::new(&current.atoms, i)
            .fix(fixed)
            .first()?;
        // Group variables by image.
        let mut by_image: HashMap<gtgd_data::Value, Vec<Var>> = HashMap::new();
        for v in current.all_vars() {
            by_image.entry(h[&v]).or_default().push(v);
        }
        if by_image.values().all(|vs| vs.len() == 1) {
            if crate::eval::holds_injectively_only(&current, i, answer) {
                return Some(current);
            }
            // Some *other* witness is non-injective: contract along it by
            // restarting from a fresh homomorphism of the contraction...
            // which is the same query; fall through to contraction via any
            // non-injective witness.
            let mut found: Option<HashMap<Var, gtgd_data::Value>> = None;
            let fixed2: Vec<(Var, gtgd_data::Value)> = current
                .answer_vars
                .iter()
                .copied()
                .zip(answer.iter().copied())
                .collect();
            crate::hom::HomSearch::new(&current.atoms, i)
                .fix(fixed2)
                .for_each(|cand| {
                    let mut seen = HashSet::new();
                    if cand.values().any(|&x| !seen.insert(x)) {
                        found = Some(cand.clone());
                        std::ops::ControlFlow::Break(())
                    } else {
                        std::ops::ControlFlow::Continue(())
                    }
                });
            let h2 = found.expect("a non-injective witness exists");
            by_image.clear();
            for v in current.all_vars() {
                by_image.entry(h2[&v]).or_default().push(v);
            }
        }
        // Contract each image class onto one representative.
        let mut remap: HashMap<Var, Var> = HashMap::new();
        let answer_set: HashSet<Var> = current.answer_vars.iter().copied().collect();
        for vs in by_image.values() {
            let rep = vs
                .iter()
                .copied()
                .find(|v| answer_set.contains(v))
                .unwrap_or(vs[0]);
            for &v in vs {
                remap.insert(v, rep);
            }
        }
        current = current.map_vars(|v| remap[&v]).compact();
    }
}

/// A specialization `(p, V)` of a CQ (Definition C.1): `p` is a contraction
/// and `V` contains all answer variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Specialization {
    /// The contraction `p`.
    pub cq: Cq,
    /// The chosen variable set `V` (`x̄ ⊆ V ⊆ var(p)`).
    pub v: BTreeSet<Var>,
}

/// All specializations of `q`: every contraction paired with every superset
/// `V` of the answer variables. Exponential; intended for the small queries
/// inside OMQs, as in the paper's constructions.
pub fn specializations(q: &Cq) -> Vec<Specialization> {
    let mut out = Vec::new();
    for p in contractions(q) {
        let answer: BTreeSet<Var> = p.answer_vars.iter().copied().collect();
        let optional: Vec<Var> = p
            .all_vars()
            .into_iter()
            .filter(|v| !answer.contains(v))
            .collect();
        // Every subset of the optional variables.
        let m = optional.len();
        assert!(m < usize::BITS as usize, "too many variables");
        for mask in 0..(1usize << m) {
            let mut v = answer.clone();
            for (bit, &ov) in optional.iter().enumerate() {
                if mask >> bit & 1 == 1 {
                    v.insert(ov);
                }
            }
            out.push(Specialization { cq: p.clone(), v });
        }
    }
    out
}

/// The atoms of `q[V]`: atoms **not** contained in `q|V`, i.e. atoms that
/// mention at least one variable outside `V` (Appendix C.1). Returned as
/// atom indexes into `q.atoms`.
pub fn atoms_outside(q: &Cq, v: &BTreeSet<Var>) -> Vec<usize> {
    (0..q.atoms.len())
        .filter(|&i| q.atoms[i].vars().iter().any(|x| !v.contains(x)))
        .collect()
}

/// The atoms of `q|V`: atoms whose variables all lie in `V`.
pub fn atoms_within(q: &Cq, v: &BTreeSet<Var>) -> Vec<usize> {
    (0..q.atoms.len())
        .filter(|&i| q.atoms[i].vars().iter().all(|x| v.contains(x)))
        .collect()
}

/// The maximally `[V]`-connected components of `q[V]` (Appendix C.1): group
/// the atoms of `q[V]` by connectivity of their variables **outside** `V` in
/// the Gaifman graph restricted to `var(q) \ V`. Returns groups of atom
/// indexes.
pub fn v_components(q: &Cq, v: &BTreeSet<Var>) -> Vec<Vec<usize>> {
    let outside_atoms = atoms_outside(q, v);
    // Union-find over outside variables.
    let outside_vars: Vec<Var> = q
        .all_vars()
        .into_iter()
        .filter(|x| !v.contains(x))
        .collect();
    let idx_of: HashMap<Var, usize> = outside_vars
        .iter()
        .enumerate()
        .map(|(i, &x)| (x, i))
        .collect();
    let mut parent: Vec<usize> = (0..outside_vars.len()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    for &ai in &outside_atoms {
        let outs: Vec<usize> = q.atoms[ai]
            .vars()
            .into_iter()
            .filter_map(|x| idx_of.get(&x).copied())
            .collect();
        for w in outs.windows(2) {
            let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
            parent[a] = b;
        }
    }
    // Group atoms by the root of any of their outside variables.
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for &ai in &outside_atoms {
        let root = q.atoms[ai]
            .vars()
            .into_iter()
            .find_map(|x| idx_of.get(&x).copied())
            .map(|i| find(&mut parent, i))
            .expect("atom outside V has an outside variable");
        groups.entry(root).or_default().push(ai);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cq;

    #[test]
    fn merge_respects_answer_priority() {
        let q = parse_cq("Q(X) :- R(X,Y)").unwrap();
        let x = q.answer_vars[0];
        let y = q.all_vars().into_iter().find(|&v| v != x).unwrap();
        // Merging the answer variable "into" y must still keep x.
        let m = merge_vars(&q, y, x);
        assert_eq!(m.answer_vars, vec![x]);
        assert!(m.atoms[0].mentions(x));
        assert!(!m.atoms[0].mentions(y));
    }

    #[test]
    #[should_panic(expected = "two answer variables")]
    fn merging_two_answer_vars_panics() {
        let q = parse_cq("Q(X,Y) :- R(X,Y)").unwrap();
        merge_vars(&q, q.answer_vars[0], q.answer_vars[1]);
    }

    #[test]
    fn contraction_counts_boolean() {
        // 3 variables, no answer vars: Bell(3) = 5 partitions, but some
        // contractions coincide structurally after dedup.
        let q = parse_cq("Q() :- E(X,Y), E(Y,Z)").unwrap();
        let cs = contractions(&q);
        // Partitions: {x}{y}{z}, {xy}{z}, {xz}{y}, {x}{yz}, {xyz}.
        // {xy}{z} gives E(x,x),E(x,z); {x}{yz} gives E(x,y),E(y,y) — distinct.
        assert_eq!(cs.len(), 5);
        assert!(cs.iter().any(|c| c.atom_count() == 1)); // full collapse E(x,x)
    }

    #[test]
    fn contractions_respect_answer_vars() {
        let q = parse_cq("Q(X,Y) :- E(X,Y), E(Y,Z)").unwrap();
        let cs = contractions(&q);
        // Z can merge into X or Y or stay: 3 partitions (X,Y never merge).
        assert_eq!(cs.len(), 3);
        for c in &cs {
            assert_eq!(c.arity(), 2);
        }
    }

    #[test]
    fn specialization_counts() {
        let q = parse_cq("Q() :- E(X,Y)").unwrap();
        // Contractions: {x}{y} -> E(x,y); {xy} -> E(x,x).
        // First has 2^2 V-choices, second 2^1.
        assert_eq!(specializations(&q).len(), 6);
    }

    #[test]
    fn v_components_split_correctly() {
        // E(X,Y), E(Y,Z), F(A,B): with V = {Y}, components of q[V] are
        // {E(X,Y)}, {E(Y,Z)} (X and Z separated by Y) and {F(A,B)}.
        let q = parse_cq("Q() :- E(X,Y), E(Y,Z), F(A,B)").unwrap();
        let vars = q.all_vars();
        let y = vars
            .iter()
            .copied()
            .find(|&v| q.var_name(v) == "Y")
            .unwrap();
        let v: BTreeSet<Var> = [y].into_iter().collect();
        let comps = v_components(&q, &v);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn v_components_with_full_v_are_empty() {
        let q = parse_cq("Q() :- E(X,Y)").unwrap();
        let v: BTreeSet<Var> = q.all_vars().into_iter().collect();
        assert!(v_components(&q, &v).is_empty());
        assert_eq!(atoms_within(&q, &v), vec![0]);
        assert!(atoms_outside(&q, &v).is_empty());
    }

    #[test]
    fn atoms_partition_by_v() {
        let q = parse_cq("Q() :- E(X,Y), P(X)").unwrap();
        let x = q
            .all_vars()
            .into_iter()
            .find(|&v| q.var_name(v) == "X")
            .unwrap();
        let v: BTreeSet<Var> = [x].into_iter().collect();
        assert_eq!(atoms_within(&q, &v), vec![1]);
        assert_eq!(atoms_outside(&q, &v), vec![0]);
    }

    #[test]
    #[should_panic(expected = "refusing to enumerate")]
    fn contraction_cap_enforced() {
        // 13 variables exceeds the cap.
        let atoms: Vec<String> = (0..13).map(|i| format!("P(V{i})")).collect();
        let q = parse_cq(&format!("Q() :- {}", atoms.join(", "))).unwrap();
        contractions(&q);
    }
}
