//! E10 — the hardness side (Prop 3.3(1) vs 3.3(3)): clique-query OMQs blow
//! up in `k`, path-query OMQs do not.

use gtgd_bench::harness;
use gtgd_bench::workloads::{clique_cq, graph_db, path_cq, plant_clique, random_graph};
use gtgd_chase::parse_tgds;
use gtgd_core::{check_omq, check_omq_fpt, EvalConfig, Omq};
use gtgd_query::Ucq;

fn main() {
    harness::group("e10_hardness_shape");
    let sigma = parse_tgds("E(X,Y) -> Node(X), Node(Y)").unwrap();
    let mut g = random_graph(13, 0.5, 97);
    plant_clique(&mut g, 5, 13);
    let db = graph_db(&g);
    let cfg = EvalConfig::default();
    for &k in &[2usize, 3, 4, 5] {
        let qc = Omq::full_schema(sigma.clone(), Ucq::single(clique_cq(k)));
        harness::case(&format!("clique_query/{k}"), || {
            check_omq(&qc, &db, &[], &cfg)
        });
        let qp = Omq::full_schema(sigma.clone(), Ucq::single(path_cq(k)));
        harness::case(&format!("path_query/{k}"), || {
            check_omq_fpt(&qp, &db, &[], &cfg)
        });
    }
}
