//! Containment and equivalence of CQSs and of OMQs sharing an ontology,
//! via the chase characterization of Proposition 4.5:
//! `S1 ⊆ S2` iff for each disjunct `p1` of `q1` there is a disjunct `p2` of
//! `q2` with `x̄ ∈ p2(chase(p1, Σ))`.
//!
//! By Lemma E.1 (finite controllability of guarded/frontier-guarded TGDs),
//! containment over databases coincides with containment over unrestricted
//! instances, so the chase test is exact whenever the chase materialization
//! is (see [`crate::eval`]).

use crate::cqs::Cqs;
use crate::eval::{check_omq, EvalConfig};
use crate::omq::Omq;
use gtgd_chase::Tgd;
use gtgd_data::Value;
use gtgd_query::Ucq;

/// The outcome of a containment test. When `exact` is `false`, a `holds =
/// false` verdict may be an artifact of an insufficient chase budget
/// (`holds = true` is always sound: witnessed on materialized prefixes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Containment {
    /// Whether containment was established.
    pub holds: bool,
    /// Whether the verdict is exact.
    pub exact: bool,
}

/// Core test: `q1 ⊆_Σ q2` per Proposition 4.5.
pub fn ucq_contained_under(sigma: &[Tgd], q1: &Ucq, q2: &Ucq, cfg: &EvalConfig) -> Containment {
    assert_eq!(q1.arity(), q2.arity(), "containment needs equal arities");
    let mut exact = true;
    for p1 in &q1.disjuncts {
        let (db, frozen) = p1.canonical_database();
        let answer: Vec<Value> = p1.answer_vars.iter().map(|v| frozen[v]).collect();
        let omq = Omq::full_schema(sigma.to_vec(), q2.clone());
        let (holds, e) = check_omq(&omq, &db, &answer, cfg);
        exact &= e;
        if !holds {
            return Containment {
                holds: false,
                exact,
            };
        }
    }
    Containment { holds: true, exact }
}

/// `S1 ⊆ S2` for CQSs sharing a constraint set.
pub fn cqs_contained(s1: &Cqs, s2: &Cqs, cfg: &EvalConfig) -> Containment {
    ucq_contained_under(&s1.sigma, &s1.query, &s2.query, cfg)
}

/// `S1 ≡ S2` for CQSs sharing a constraint set.
pub fn cqs_equivalent(s1: &Cqs, s2: &Cqs, cfg: &EvalConfig) -> Containment {
    let a = cqs_contained(s1, s2, cfg);
    if !a.holds {
        return a;
    }
    let b = cqs_contained(s2, s1, cfg);
    Containment {
        holds: b.holds,
        exact: a.exact && b.exact,
    }
}

/// OMQ containment `Q1 ⊆ Q2` for OMQs sharing the ontology Σ.
///
/// The chase test is **exact for full data schema** (then `D[p1]` is a legal
/// input database). For a restricted data schema it remains *sufficient*:
/// `holds = true` implies containment over `S`-databases; `holds = false`
/// is conservative. This covers every use in the paper's pipelines, where
/// approximations share the ontology and the CQS results live at full
/// schema.
pub fn omq_contained_same_sigma(q1: &Omq, q2: &Omq, cfg: &EvalConfig) -> Containment {
    ucq_contained_under(&q1.sigma, &q1.query, &q2.query, cfg)
}

/// Σ-aware UCQ minimization (the preprocessing step of Appendix H.3):
/// removes every disjunct that is strictly ⊆_Σ-below another, and one of
/// each ≡_Σ-duplicate pair. The result is Σ-equivalent to the input and
/// has only ⊆_Σ-maximal disjuncts.
// Index loops keep the i≠j pairwise logic legible here.
#[allow(clippy::needless_range_loop)]
pub fn minimize_ucq_under(sigma: &[Tgd], q: &Ucq, cfg: &EvalConfig) -> Ucq {
    let n = q.disjuncts.len();
    let single = |i: usize| Ucq::single(q.disjuncts[i].clone());
    // contained[i][j] = disjunct i ⊆_Σ disjunct j.
    let mut contained = vec![vec![false; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                contained[i][j] = ucq_contained_under(sigma, &single(i), &single(j), cfg).holds;
            }
        }
    }
    let mut keep: Vec<usize> = Vec::new();
    for i in 0..n {
        let dominated = (0..n)
            .any(|j| j != i && contained[i][j] && (!contained[j][i] || keep.contains(&j) || j < i));
        if !dominated {
            keep.push(i);
        }
    }
    if keep.is_empty() {
        keep.push(0); // all equivalent: keep one
    }
    Ucq::new(keep.into_iter().map(|i| q.disjuncts[i].clone()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtgd_chase::parse_tgds;
    use gtgd_query::parse_ucq;

    fn cfg() -> EvalConfig {
        EvalConfig::default()
    }

    #[test]
    fn minimization_drops_sigma_subsumed_disjuncts() {
        // Under Σ: A ⊆ B, so the A-disjunct is ⊆_Σ the B-disjunct.
        let sigma = parse_tgds("A(X) -> B(X)").unwrap();
        let q = parse_ucq("Q(X) :- A(X). Q(X) :- B(X)").unwrap();
        let m = minimize_ucq_under(&sigma, &q, &cfg());
        assert_eq!(m.disjuncts.len(), 1);
        assert_eq!(
            m.disjuncts[0].atoms[0].predicate,
            gtgd_data::Predicate::new("B")
        );
        // Σ-equivalence of the minimization.
        let c1 = ucq_contained_under(&sigma, &q, &m, &cfg());
        let c2 = ucq_contained_under(&sigma, &m, &q, &cfg());
        assert!(c1.holds && c2.holds);
    }

    #[test]
    fn minimization_keeps_incomparable_disjuncts() {
        let q = parse_ucq("Q(X) :- A(X). Q(X) :- B(X)").unwrap();
        let m = minimize_ucq_under(&[], &q, &cfg());
        assert_eq!(m.disjuncts.len(), 2);
    }

    #[test]
    fn minimization_deduplicates_equivalents() {
        let q = parse_ucq("Q(X) :- A(X), A(Y). Q(X) :- A(X)").unwrap();
        let m = minimize_ucq_under(&[], &q, &cfg());
        assert_eq!(m.disjuncts.len(), 1);
    }

    #[test]
    fn example_4_4_rewriting_is_equivalent() {
        // The paper's Example 4.4: under Σ = {R2(x) → R4(x)}, the treewidth-2
        // core q is Σ-equivalent to the treewidth-1 query q′.
        let sigma = parse_tgds("R2(X) -> R4(X)").unwrap();
        let q = parse_ucq(
            "Q() :- P(X2,X1), P(X4,X1), P(X2,X3), P(X4,X3), R1(X1), R2(X2), R3(X3), R4(X4)",
        )
        .unwrap();
        let qp = parse_ucq("Q() :- P(X2,X1), P(X2,X3), R1(X1), R2(X2), R3(X3)").unwrap();
        let s = Cqs::new(sigma.clone(), q.clone());
        let sp = Cqs::new(sigma.clone(), qp.clone());
        let eq = cqs_equivalent(&s, &sp, &cfg());
        assert!(eq.exact);
        assert!(eq.holds, "Example 4.4: q ≡_Σ q′");
        // Without the constraint they are NOT equivalent.
        let s0 = Cqs::new(vec![], q);
        let sp0 = Cqs::new(vec![], qp);
        let eq0 = cqs_equivalent(&s0, &sp0, &cfg());
        assert!(eq0.exact);
        assert!(!eq0.holds);
    }

    #[test]
    fn containment_direction_matters() {
        let sigma = parse_tgds("A(X) -> B(X)").unwrap();
        let qa = parse_ucq("Q(X) :- A(X)").unwrap();
        let qb = parse_ucq("Q(X) :- B(X)").unwrap();
        // Under Σ, every A is a B: q_a ⊆_Σ q_b.
        let c1 = ucq_contained_under(&sigma, &qa, &qb, &cfg());
        assert!(c1.holds && c1.exact);
        let c2 = ucq_contained_under(&sigma, &qb, &qa, &cfg());
        assert!(!c2.holds && c2.exact);
    }

    #[test]
    fn ucq_disjunct_level_containment() {
        let sigma = vec![];
        let u1 = parse_ucq("Q() :- A(X), B(X)").unwrap();
        let u2 = parse_ucq("Q() :- A(X). Q() :- B(X)").unwrap();
        assert!(ucq_contained_under(&sigma, &u1, &u2, &cfg()).holds);
        assert!(!ucq_contained_under(&sigma, &u2, &u1, &cfg()).holds);
    }

    #[test]
    fn infinite_chase_containment() {
        // Σ: every node has a successor. A 2-step reachability query is
        // contained in the 1-step query under Σ... it is even without Σ.
        // The interesting direction: N(x) → ∃y E(x,y) makes Q2 below hold
        // from N alone.
        let sigma = parse_tgds("N(X) -> E(X,Y), N(Y)").unwrap();
        let q1 = parse_ucq("Q(X) :- N(X)").unwrap();
        let q2 = parse_ucq("Q(X) :- E(X,Y), E(Y,Z)").unwrap();
        let c = ucq_contained_under(&sigma, &q1, &q2, &cfg());
        assert!(c.holds, "chasing N(x) yields an infinite E-path");
        assert!(c.exact);
    }

    #[test]
    fn omq_variant_delegates() {
        let sigma = parse_tgds("A(X) -> B(X)").unwrap();
        let q1 = Omq::full_schema(sigma.clone(), parse_ucq("Q(X) :- A(X)").unwrap());
        let q2 = Omq::full_schema(sigma, parse_ucq("Q(X) :- B(X)").unwrap());
        assert!(omq_contained_same_sigma(&q1, &q2, &cfg()).holds);
    }
}
