//! The chase facade: one builder in front of the three engines.
//!
//! The crate grew three chase entry points — the sequential oblivious
//! [`crate::engine::chase`], the pool-parallel [`crate::par_engine::par_chase`],
//! and the [`crate::restricted::restricted_chase`] — each with its own result
//! type. [`ChaseRunner`] unifies them: pick a [`ChaseVariant`], a
//! [`ChaseBudget`], a worker count, and optionally tracing, then [`run`].
//! The legacy free functions delegate here, so their behaviour (budget-stop
//! exactness, null naming, level bookkeeping) is unchanged.
//!
//! ```
//! use gtgd_chase::{parse_tgds, ChaseBudget, ChaseRunner};
//! use gtgd_data::{GroundAtom, Instance};
//!
//! let tgds = parse_tgds("A(X) -> B(X). B(X) -> C(X).").unwrap();
//! let db = Instance::from_atoms([GroundAtom::named("A", &["a"])]);
//! let outcome = ChaseRunner::new(&tgds)
//!     .budget(ChaseBudget::unbounded())
//!     .run(&db);
//! assert!(outcome.complete);
//! assert_eq!(outcome.instance.len(), 3);
//! ```
//!
//! [`run`]: ChaseRunner::run

use crate::engine::{ChaseBudget, ChaseResult};
use crate::restricted::RestrictedChaseResult;
use crate::tgd::Tgd;
use gtgd_data::{obs, prov, FiringRecord, Instance};

/// Which chase semantics to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChaseVariant {
    /// The oblivious chase: every trigger fires exactly once, levels are
    /// canonical. Parallelizes (trigger search distributes over workers).
    #[default]
    Oblivious,
    /// The restricted (standard) chase: a trigger fires only if its head is
    /// not yet satisfied. Smaller results, order-dependent, sequential —
    /// a configured worker count is ignored (documented limitation).
    Restricted,
}

/// A configured chase run over a fixed TGD set. Built with
/// [`ChaseRunner::new`], executed with [`ChaseRunner::run`]; reusable
/// across databases.
#[derive(Debug, Clone, Copy)]
pub struct ChaseRunner<'a> {
    tgds: &'a [Tgd],
    variant: ChaseVariant,
    budget: ChaseBudget,
    workers: usize,
    trace: bool,
    certify: bool,
}

/// What a chase run produced. Field availability depends on the variant:
/// the oblivious chase has canonical levels, the restricted chase has a
/// fired-trigger count.
#[derive(Debug, Clone)]
pub struct ChaseOutcome {
    /// The materialized instance (includes the input database).
    pub instance: Instance,
    /// Whether a fixpoint was reached within budget.
    pub complete: bool,
    /// Per-atom chase levels (oblivious variant only).
    pub levels: Option<Vec<usize>>,
    /// The highest level materialized (oblivious variant only).
    pub max_level: Option<usize>,
    /// Triggers fired (restricted variant only; the oblivious engines
    /// report firings through the [`obs`] counters instead).
    pub fired: Option<usize>,
    /// The run's probe report; `None` unless built with `.trace(true)`.
    pub report: Option<obs::RunReport>,
    /// The run's derivation provenance — every trigger firing, in the
    /// engines' canonical firing order; `None` unless built with
    /// `.certify(true)`.
    pub firings: Option<Vec<FiringRecord>>,
}

impl ChaseOutcome {
    /// Converts to the legacy oblivious-chase result type. Panics on a
    /// restricted-variant outcome (no level structure).
    pub fn into_chase_result(self) -> ChaseResult {
        ChaseResult {
            instance: self.instance,
            levels: self.levels.expect("oblivious outcome has levels"),
            complete: self.complete,
            max_level: self.max_level.expect("oblivious outcome has max level"),
        }
    }

    /// Converts to the legacy restricted-chase result type. Panics on an
    /// oblivious-variant outcome (no fired count).
    pub fn into_restricted_result(self) -> RestrictedChaseResult {
        RestrictedChaseResult {
            instance: self.instance,
            complete: self.complete,
            fired: self.fired.expect("restricted outcome has a fired count"),
        }
    }
}

impl<'a> ChaseRunner<'a> {
    /// A runner over `tgds` with defaults: oblivious variant, unbounded
    /// budget, one worker, no tracing.
    pub fn new(tgds: &'a [Tgd]) -> ChaseRunner<'a> {
        ChaseRunner {
            tgds,
            variant: ChaseVariant::default(),
            budget: ChaseBudget::unbounded(),
            workers: 1,
            trace: false,
            certify: false,
        }
    }

    /// Selects the chase semantics (default: [`ChaseVariant::Oblivious`]).
    pub fn variant(mut self, v: ChaseVariant) -> Self {
        self.variant = v;
        self
    }

    /// Sets the resource budget (default: unbounded — only safe for
    /// terminating chases).
    pub fn budget(mut self, b: ChaseBudget) -> Self {
        self.budget = b;
        self
    }

    /// Sets the worker-pool width for trigger search (default 1 =
    /// sequential). Only the oblivious variant parallelizes; the
    /// restricted chase ignores this.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Enables probe collection: the outcome's
    /// [`report`](ChaseOutcome::report) will carry chase rounds, trigger
    /// firings, nulls created, kernel work, index maintenance, and pool
    /// utilization for this run.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Enables derivation-provenance capture: the outcome's
    /// [`firings`](ChaseOutcome::firings) will list every trigger firing
    /// ([`FiringRecord`]) in the engines' canonical firing order —
    /// deterministic for any worker count, since all engines fire on a
    /// single merge thread. This is the raw material for answer
    /// certificates (see the `cert` module).
    pub fn certify(mut self, on: bool) -> Self {
        self.certify = on;
        self
    }

    fn run_now(&self, db: &Instance) -> ChaseOutcome {
        match self.variant {
            ChaseVariant::Oblivious => {
                let r = if self.workers > 1 {
                    crate::par_engine::par_chase_impl(db, self.tgds, &self.budget, self.workers)
                } else {
                    crate::engine::chase_impl(db, self.tgds, &self.budget)
                };
                ChaseOutcome {
                    instance: r.instance,
                    complete: r.complete,
                    levels: Some(r.levels),
                    max_level: Some(r.max_level),
                    fired: None,
                    report: None,
                    firings: None,
                }
            }
            ChaseVariant::Restricted => {
                let r = crate::restricted::restricted_chase_impl(db, self.tgds, &self.budget);
                ChaseOutcome {
                    instance: r.instance,
                    complete: r.complete,
                    levels: None,
                    max_level: None,
                    fired: Some(r.fired),
                    report: None,
                    firings: None,
                }
            }
        }
    }

    /// Runs the configured chase on `db`.
    pub fn run(&self, db: &Instance) -> ChaseOutcome {
        if self.certify {
            let (mut outcome, firings) = prov::collect_run(|| self.run_traced(db));
            outcome.firings = Some(firings);
            outcome
        } else {
            self.run_traced(db)
        }
    }

    /// Builds a [`crate::MaintainedInstance`]: chases `db` to its fixpoint
    /// once, then keeps the result live under
    /// [`insert`](crate::MaintainedInstance::insert) /
    /// [`retract`](crate::MaintainedInstance::retract) without re-chasing.
    /// Maintenance has oblivious semantics regardless of the configured
    /// variant (the restricted chase's fixpoint is order-dependent, so an
    /// incrementally maintained result could legitimately diverge from a
    /// re-chase — see the `maintain` module docs); the runner's budget is
    /// honored, except that level caps are rejected there.
    ///
    /// # Panics
    /// If the configured variant is [`ChaseVariant::Restricted`] or the
    /// budget has a level cap.
    pub fn maintain(&self, db: &Instance) -> crate::MaintainedInstance {
        assert_eq!(
            self.variant,
            ChaseVariant::Oblivious,
            "maintenance is oblivious-only: the restricted fixpoint is order-dependent"
        );
        crate::MaintainedInstance::new(db, self.tgds, self.budget)
    }

    fn run_traced(&self, db: &Instance) -> ChaseOutcome {
        if self.trace {
            let (mut outcome, report) = obs::trace_run(|| self.run_now(db));
            outcome.report = Some(report);
            outcome
        } else {
            self.run_now(db)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::chase;
    use crate::restricted::restricted_chase;
    use crate::tgd::parse_tgds;
    use gtgd_data::{GroundAtom, Value};
    use gtgd_query::instance_isomorphic;

    fn db(atoms: &[(&str, &[&str])]) -> Instance {
        Instance::from_atoms(atoms.iter().map(|(p, args)| GroundAtom::named(p, args)))
    }

    #[test]
    fn oblivious_outcome_matches_free_function() {
        let tgds = parse_tgds("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
        let d = db(&[("E", &["a", "b"]), ("E", &["b", "c"])]);
        let legacy = chase(&d, &tgds, &ChaseBudget::unbounded());
        let outcome = ChaseRunner::new(&tgds).run(&d);
        assert_eq!(outcome.instance, legacy.instance);
        assert_eq!(outcome.levels.as_deref(), Some(legacy.levels.as_slice()));
        assert_eq!(outcome.max_level, Some(legacy.max_level));
        assert_eq!(outcome.complete, legacy.complete);
    }

    #[test]
    fn parallel_dispatch_is_isomorphic() {
        let tgds =
            parse_tgds("Emp(X) -> WorksIn(X,D), Dept(D). Dept(D) -> HasMgr(D,M), Emp(M)").unwrap();
        let d = db(&[("Emp", &["ann"]), ("Emp", &["bob"])]);
        let seq = chase(&d, &tgds, &ChaseBudget::levels(4));
        for w in [2, 4] {
            let par = ChaseRunner::new(&tgds)
                .budget(ChaseBudget::levels(4))
                .workers(w)
                .run(&d);
            assert_eq!(par.instance.len(), seq.instance.len(), "workers {w}");
            assert_eq!(par.levels.as_deref(), Some(seq.levels.as_slice()));
            assert!(instance_isomorphic(&par.instance, &seq.instance));
        }
    }

    #[test]
    fn restricted_outcome_matches_free_function() {
        let tgds = parse_tgds("P(X) -> R(X,Y)").unwrap();
        let d = db(&[("P", &["a"]), ("R", &["a", "b"])]);
        let legacy = restricted_chase(&d, &tgds, &ChaseBudget::unbounded());
        let outcome = ChaseRunner::new(&tgds)
            .variant(ChaseVariant::Restricted)
            .run(&d);
        assert_eq!(outcome.instance, legacy.instance);
        assert_eq!(outcome.fired, Some(legacy.fired));
        assert!(outcome.levels.is_none());
    }

    #[test]
    fn budget_stop_behaviour_is_preserved() {
        let tgds = parse_tgds("P(X) -> Q(X,Y). Q(X,Y) -> P(Y)").unwrap();
        let d = db(&[("P", &["a"])]);
        let legacy = chase(&d, &tgds, &ChaseBudget::atoms(20));
        let outcome = ChaseRunner::new(&tgds)
            .budget(ChaseBudget::atoms(20))
            .run(&d);
        assert!(!outcome.complete);
        assert_eq!(outcome.instance.len(), legacy.instance.len());
    }

    #[test]
    fn traced_run_reports_chase_work() {
        let tgds = parse_tgds("A(X) -> B(X). B(X) -> C(X).").unwrap();
        let d = db(&[("A", &["a"])]);
        let outcome = ChaseRunner::new(&tgds).trace(true).run(&d);
        let report = outcome.report.expect("trace was requested");
        assert!(report.counter(obs::Metric::ChaseRounds) >= 2);
        assert!(report.counter(obs::Metric::TriggerFirings) >= 2);
        assert!(report.spans.iter().any(|s| s.name == "chase.oblivious"));
        // Untraced runs carry no report.
        assert!(ChaseRunner::new(&tgds).run(&d).report.is_none());
    }

    #[test]
    fn certified_run_captures_every_firing() {
        let tgds = parse_tgds("A(X) -> B(X). B(X) -> R(X,Y).").unwrap();
        let d = db(&[("A", &["a"])]);
        let outcome = ChaseRunner::new(&tgds).certify(true).run(&d);
        let firings = outcome.firings.expect("certify was requested");
        // A(a) ⇒ B(a) ⇒ R(a,⊥): two firings, in chase order.
        assert_eq!(firings.len(), 2);
        assert_eq!(firings[0].tgd, 0);
        assert_eq!(firings[1].tgd, 1);
        // Every recorded head atom is in the materialized instance.
        for f in &firings {
            for a in &f.atoms {
                assert!(outcome.instance.contains(a));
            }
        }
        // The second firing bound its existential to a fresh null.
        assert!(f_null(&firings[1].val));
        // Uncertified runs carry no firings.
        assert!(ChaseRunner::new(&tgds).run(&d).firings.is_none());
    }

    fn f_null(val: &[(u32, Value)]) -> bool {
        val.iter().any(|(_, v)| matches!(v, Value::Null(_)))
    }
}
