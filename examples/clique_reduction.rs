//! The lower-bound machinery, end to end: reduce k-clique to CQS
//! evaluation through the Grohe construction (Theorems 5.13 / 7.1).
//!
//! Run with: `cargo run --example clique_reduction --release`

use gtgd::omq::grohe::has_clique;
use gtgd::omq::reduction::{clique_to_cqs_instance, decide_clique_via_cqs, grid_cqs_family};
use gtgd::treewidth::Graph;

fn main() {
    let k = 3;
    let fam = grid_cqs_family(k);
    println!(
        "CQS family for k = {k}: grid query with {} atoms, treewidth {}",
        fam.p.atom_count(),
        gtgd::query::tw::cq_treewidth(&fam.p)
    );

    // A yes-instance: two triangles sharing an edge.
    let mut yes = Graph::new(4);
    yes.make_clique(&[0, 1, 2]);
    yes.make_clique(&[1, 2, 3]);
    // A no-instance: the 5-cycle.
    let mut no = Graph::new(5);
    for i in 0..5 {
        no.add_edge(i, (i + 1) % 5);
    }

    for (name, g) in [("two-triangles", &yes), ("C5", &no)] {
        let reduced = clique_to_cqs_instance(g, k, &fam);
        let verdict = decide_clique_via_cqs(g, k, &fam);
        let truth = has_clique(g, k);
        println!(
            "{name:14} |V| = {}, |E| = {}  →  |D*| = {:4}  CQS says {verdict}, \
             brute force says {truth}",
            g.vertex_count(),
            g.edge_count(),
            reduced.grohe.instance.len(),
        );
        assert_eq!(verdict, truth);
    }

    // The reduction is an *fpt*-reduction: D* grows polynomially with |G|
    // for fixed k.
    println!("\n|D*| as the graph grows (k = {k}):");
    for n in [5usize, 7, 9, 11] {
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if (u + v) % 3 != 0 {
                    g.add_edge(u, v);
                }
            }
        }
        let reduced = clique_to_cqs_instance(&g, k, &fam);
        println!(
            "  |V| = {n:2}  |D*| = {:6}  k-clique = {}",
            reduced.grohe.instance.len(),
            decide_clique_via_cqs(&g, k, &fam)
        );
    }
}
