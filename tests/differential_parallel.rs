//! Differential testing of the parallel execution layer against the
//! sequential engines: on randomized TGD sets and databases, for several
//! worker counts,
//!
//! * `par_chase` must produce an instance *isomorphic* to the sequential
//!   `chase` (null identities come from a global counter, so only the shape
//!   is comparable), with identical levels, completeness, and atom counts;
//! * `par_ground_saturation` must be *equal* to `ground_saturation` (its
//!   output mentions only named constants);
//! * CQ answer sets enumerated by `HomSearch::par_all` /
//!   `evaluate_cq_par` must be identical, as sorted sets, to the
//!   sequential evaluation.

use gtgd::chase::{chase, ground_saturation, par_chase, par_ground_saturation, ChaseBudget, Tgd};
use gtgd::data::{GroundAtom, Instance, Rng, Value};
use gtgd::query::{evaluate_cq, evaluate_cq_par, instance_isomorphic, parse_cq, Cq};

const WORKER_WIDTHS: [usize; 3] = [1, 2, 4];

/// A pool of guarded rule templates (same shape as the typed-chase
/// differential suite): subsets are guarded, constant-free TGD sets mixing
/// full and existential rules.
fn rule_pool() -> Vec<Tgd> {
    gtgd::chase::parse_tgds(
        "A(X) -> B(X). \
         B(X) -> R(X,Y). \
         R(X,Y) -> S(Y,X). \
         R(X,Y), A(X) -> B(Y). \
         S(X,Y) -> A(X). \
         R(X,Y), B(Y) -> S(X,X). \
         B(X) -> A(X)",
    )
    .unwrap()
}

fn query_pool() -> Vec<Cq> {
    vec![
        parse_cq("Q(X) :- A(X)").unwrap(),
        parse_cq("Q(X) :- B(X)").unwrap(),
        parse_cq("Q(X) :- R(X,Y), S(Y,Z)").unwrap(),
        parse_cq("Q(X,Y) :- S(X,Y), A(X)").unwrap(),
        parse_cq("Q() :- R(X,Y), B(Y)").unwrap(),
    ]
}

fn arb_db(rng: &mut Rng) -> Instance {
    let k = rng.range(1, 9);
    Instance::from_atoms((0..k).map(|_| {
        let kind = rng.range(0, 3);
        let (a, b) = (rng.range(0, 4), rng.range(0, 4));
        match kind {
            0 => GroundAtom::named("A", &[&format!("c{a}")]),
            1 => GroundAtom::named("R", &[&format!("c{a}"), &format!("c{b}")]),
            _ => GroundAtom::named("S", &[&format!("c{a}"), &format!("c{b}")]),
        }
    }))
}

fn sigma_for_mask(pool: &[Tgd], mask: u8) -> Vec<Tgd> {
    pool.iter()
        .enumerate()
        .filter(|(i, _)| mask >> i & 1 == 1)
        .map(|(_, t)| t.clone())
        .collect()
}

fn sorted_answers(ans: std::collections::HashSet<Vec<Value>>) -> Vec<Vec<Value>> {
    let mut v: Vec<Vec<Value>> = ans.into_iter().collect();
    v.sort();
    v
}

/// The parallel chase agrees with the sequential chase up to isomorphism on
/// randomized guarded ontologies, for every worker width.
#[test]
fn par_chase_isomorphic_to_sequential() {
    let pool = rule_pool();
    let budget = ChaseBudget::levels(5);
    for mask in 0u8..128 {
        let mut rng = Rng::seed(0xAB5E ^ u64::from(mask));
        let d = arb_db(&mut rng);
        let sigma = sigma_for_mask(&pool, mask);
        let seq = chase(&d, &sigma, &budget);
        for w in WORKER_WIDTHS {
            let par = par_chase(&d, &sigma, &budget, w);
            assert_eq!(
                par.instance.len(),
                seq.instance.len(),
                "atom count differs (mask {mask:#b}, workers {w})"
            );
            assert_eq!(
                par.levels, seq.levels,
                "levels differ (mask {mask:#b}, workers {w})"
            );
            assert_eq!(par.complete, seq.complete, "mask {mask:#b}, workers {w}");
            assert_eq!(par.max_level, seq.max_level, "mask {mask:#b}, workers {w}");
            assert!(
                instance_isomorphic(&par.instance, &seq.instance),
                "not isomorphic (mask {mask:#b}, workers {w})"
            );
        }
    }
}

/// CQ answers over the parallel chase result, restricted to the database
/// domain, match the sequential chase's answers as sorted sets. (Over the
/// full instance answers may mention nulls, whose labels legitimately
/// differ between runs.)
#[test]
fn par_chase_preserves_ground_query_answers() {
    let pool = rule_pool();
    let budget = ChaseBudget::levels(5);
    for mask in (0u8..128).step_by(3) {
        let mut rng = Rng::seed(0xBEEF ^ u64::from(mask));
        let d = arb_db(&mut rng);
        let sigma = sigma_for_mask(&pool, mask);
        let seq = chase(&d, &sigma, &budget);
        let par = par_chase(&d, &sigma, &budget, 4);
        for q in query_pool() {
            let ground_only = |ans: std::collections::HashSet<Vec<Value>>| {
                ans.into_iter()
                    .filter(|t| t.iter().all(|v| d.dom_contains(*v)))
                    .collect::<std::collections::HashSet<_>>()
            };
            let a = sorted_answers(ground_only(evaluate_cq(&q, &seq.instance)));
            let b = sorted_answers(ground_only(evaluate_cq(&q, &par.instance)));
            assert_eq!(a, b, "answers differ for {q} (mask {mask:#b})");
        }
    }
}

/// The parallel ground saturation is set-equal to the sequential one for
/// every worker width.
#[test]
fn par_saturation_equals_sequential() {
    let pool = rule_pool();
    for mask in 0u8..128 {
        let mut rng = Rng::seed(0x5A7 ^ u64::from(mask));
        let d = arb_db(&mut rng);
        let sigma = sigma_for_mask(&pool, mask);
        let seq = ground_saturation(&d, &sigma);
        for w in WORKER_WIDTHS {
            assert_eq!(
                par_ground_saturation(&d, &sigma, w),
                seq,
                "saturation differs (mask {mask:#b}, workers {w})"
            );
        }
    }
}

/// Parallel answer enumeration is identical (as a sorted set) to the
/// sequential evaluation, over both raw databases and chase results.
#[test]
fn par_enumeration_matches_sequential() {
    let pool = rule_pool();
    for mask in (0u8..128).step_by(5) {
        let mut rng = Rng::seed(0xE9A ^ u64::from(mask));
        let d = arb_db(&mut rng);
        let sigma = sigma_for_mask(&pool, mask);
        let chased = chase(&d, &sigma, &ChaseBudget::levels(4)).instance;
        for target in [&d, &chased] {
            for q in query_pool() {
                let seq = sorted_answers(evaluate_cq(&q, target));
                for w in WORKER_WIDTHS {
                    let par = sorted_answers(evaluate_cq_par(&q, target, w));
                    assert_eq!(
                        par, seq,
                        "answers differ for {q} (mask {mask:#b}, workers {w})"
                    );
                }
            }
        }
    }
}

/// The parallel chase is itself deterministic: the same inputs give the
/// same instance shape for every worker count, including the trigger order
/// (atom-by-atom level agreement across widths).
#[test]
fn par_chase_deterministic_across_widths() {
    let pool = rule_pool();
    let budget = ChaseBudget::levels(5);
    for mask in [0b0000111u8, 0b1010101, 0b1111111] {
        let mut rng = Rng::seed(0xD5 ^ u64::from(mask));
        let d = arb_db(&mut rng);
        let sigma = sigma_for_mask(&pool, mask);
        let reference = par_chase(&d, &sigma, &budget, 1);
        for w in [2, 3, 4, 8] {
            let r = par_chase(&d, &sigma, &budget, w);
            assert_eq!(r.levels, reference.levels, "mask {mask:#b}, workers {w}");
            assert_eq!(r.instance.len(), reference.instance.len());
            assert!(instance_isomorphic(&r.instance, &reference.instance));
        }
    }
}
