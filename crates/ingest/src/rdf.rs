//! RDF frontend: N-Triples plus the Turtle subset the benchmark suites
//! actually use (`@prefix`, prefixed names, `a`, `;`/`,` object lists,
//! quoted literals with escapes, comments). `rdf:type` triples become
//! unary atoms `C(s)`; every other triple becomes a binary atom `p(s,o)`.
//!
//! By default IRIs are shortened to their local name (the part after the
//! last `#` or `/`), which keeps programs readable and makes the RDF path
//! line up with hand-written datalog over the same vocabulary; pass
//! [`RdfSource::full_iris`] to keep absolute IRIs as constant names.
//!
//! Malformed input is rejected with a line-precise [`IngestError::Rdf`] —
//! never a panic, never a silently dropped triple.

use crate::error::IngestError;
use crate::source::{FactSink, Source, SourceSchema};
use gtgd_data::{GroundAtom, Predicate, Value};
use std::collections::HashMap;

const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// An RDF document (N-Triples / Turtle subset) as an ingestion source.
#[derive(Debug, Clone)]
pub struct RdfSource {
    name: String,
    text: String,
    full_iris: bool,
}

impl RdfSource {
    /// A source over in-memory RDF text. `name` labels errors and the
    /// resulting program (use the path or a logical dataset name).
    pub fn from_str(name: &str, text: &str) -> RdfSource {
        RdfSource {
            name: name.to_string(),
            text: text.to_string(),
            full_iris: false,
        }
    }

    /// A source reading `path` from disk.
    pub fn from_path(path: &std::path::Path) -> Result<RdfSource, IngestError> {
        let text = std::fs::read_to_string(path).map_err(|e| IngestError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Ok(RdfSource {
            name: path.display().to_string(),
            text,
            full_iris: false,
        })
    }

    /// Keeps absolute IRIs as constant/predicate names instead of
    /// shortening to the local part.
    pub fn full_iris(mut self, yes: bool) -> RdfSource {
        self.full_iris = yes;
        self
    }
}

impl Source for RdfSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn schema(&mut self) -> Result<SourceSchema, IngestError> {
        // Plain RDF declares nothing; the data's arities (1 for classes,
        // 2 for properties) are inferred by the driver. Ontologies ride
        // in via `OwlSource`, which wraps an `RdfSource` ABox.
        Ok(SourceSchema::default())
    }

    fn facts(&mut self, sink: &mut dyn FactSink) -> Result<(), IngestError> {
        let mut p = Parser::new(&self.text, self.full_iris);
        p.run(sink)
    }
}

/// One parsed RDF term.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Term {
    Iri(String),
    Blank(String),
    Literal(String),
}

struct Parser<'a> {
    bytes: &'a [u8],
    text: &'a str,
    pos: usize,
    line: usize,
    prefixes: HashMap<String, String>,
    full_iris: bool,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str, full_iris: bool) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            text,
            pos: 0,
            line: 1,
            prefixes: HashMap::new(),
            full_iris,
        }
    }

    fn err(&self, message: impl Into<String>) -> IngestError {
        IngestError::Rdf {
            line: self.line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    /// Skips whitespace and `#` comments.
    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'#' => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn run(&mut self, sink: &mut dyn FactSink) -> Result<(), IngestError> {
        loop {
            self.skip_ws();
            if self.peek().is_none() {
                return Ok(());
            }
            if self.peek() == Some(b'@') {
                self.directive()?;
            } else {
                self.statement(sink)?;
            }
        }
    }

    /// `@prefix p: <iri> .`
    fn directive(&mut self) -> Result<(), IngestError> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_alphabetic() || b == b'@') {
            self.bump();
        }
        let word = &self.text[start..self.pos];
        if word != "@prefix" {
            return Err(self.err(format!("unsupported directive `{word}` (only @prefix)")));
        }
        self.skip_ws();
        let pstart = self.pos;
        while self.peek().is_some_and(is_name_byte) {
            self.bump();
        }
        let prefix = self.text[pstart..self.pos].to_string();
        if self.bump() != Some(b':') {
            return Err(self.err("expected `:` after prefix name in @prefix"));
        }
        self.skip_ws();
        let iri = match self.term()? {
            Term::Iri(i) => i,
            other => return Err(self.err(format!("expected <iri> in @prefix, found {other:?}"))),
        };
        self.skip_ws();
        if self.bump() != Some(b'.') {
            return Err(self.err("expected `.` ending @prefix directive"));
        }
        self.prefixes.insert(prefix, iri);
        Ok(())
    }

    /// `subject verb obj (, obj)* (; verb obj...)* .`
    fn statement(&mut self, sink: &mut dyn FactSink) -> Result<(), IngestError> {
        let subject = self.term()?;
        if matches!(subject, Term::Literal(_)) {
            return Err(self.err("a literal cannot be the subject of a triple"));
        }
        loop {
            self.skip_ws();
            let verb = self.verb()?;
            loop {
                self.skip_ws();
                let object = self.term()?;
                self.emit(&subject, &verb, &object, sink)?;
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.bump();
                    }
                    _ => break,
                }
            }
            match self.peek() {
                Some(b';') => {
                    self.bump();
                    self.skip_ws();
                    // Turtle allows a trailing `;` before the final `.`.
                    if self.peek() == Some(b'.') {
                        self.bump();
                        return Ok(());
                    }
                }
                Some(b'.') => {
                    self.bump();
                    return Ok(());
                }
                Some(other) => {
                    return Err(self.err(format!(
                        "expected `.`, `;` or `,` after object, found `{}`",
                        other as char
                    )))
                }
                None => return Err(self.err("unexpected end of input: triple not closed by `.`")),
            }
        }
    }

    /// Predicate position: `a` or an IRI.
    fn verb(&mut self) -> Result<Term, IngestError> {
        // `a` must be the bare keyword, not a prefix of a longer name.
        if self.peek() == Some(b'a')
            && !self.bytes.get(self.pos + 1).copied().is_some_and(|b| is_name_byte(b) || b == b':')
        {
            self.bump();
            return Ok(Term::Iri(RDF_TYPE.to_string()));
        }
        match self.term()? {
            t @ Term::Iri(_) => Ok(t),
            other => Err(self.err(format!("predicate must be an IRI, found {other:?}"))),
        }
    }

    fn term(&mut self) -> Result<Term, IngestError> {
        self.skip_ws();
        match self.peek() {
            Some(b'<') => self.iri_ref(),
            Some(b'"') => self.literal(),
            Some(b'_') if self.bytes.get(self.pos + 1) == Some(&b':') => self.blank(),
            Some(b) if b.is_ascii_digit() || b == b'+' || b == b'-' => self.number(),
            Some(_) => self.prefixed_name(),
            None => Err(self.err("unexpected end of input: expected an RDF term")),
        }
    }

    fn iri_ref(&mut self) -> Result<Term, IngestError> {
        self.bump(); // `<`
        let start = self.pos;
        loop {
            match self.peek() {
                Some(b'>') => {
                    let iri = self.text[start..self.pos].to_string();
                    self.bump();
                    return Ok(Term::Iri(iri));
                }
                Some(b'\n') | None => return Err(self.err("unterminated IRI (missing `>`)")),
                Some(_) => {
                    self.bump();
                }
            }
        }
    }

    fn literal(&mut self) -> Result<Term, IngestError> {
        self.bump(); // `"`
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => out.push(self.unicode_escape(4)?),
                    Some(b'U') => out.push(self.unicode_escape(8)?),
                    Some(c) => {
                        return Err(self.err(format!("bad escape `\\{}` in literal", c as char)))
                    }
                    None => return Err(self.err("unterminated literal (ends mid-escape)")),
                },
                Some(b'\n') | None => {
                    return Err(self.err("unterminated literal (missing closing `\"`)"))
                }
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-assemble the multi-byte UTF-8 sequence starting at b.
                    let mut buf = vec![b];
                    while self.peek().is_some_and(|n| n & 0xC0 == 0x80) {
                        buf.push(self.bump().unwrap());
                    }
                    match std::str::from_utf8(&buf) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8 in literal")),
                    }
                }
            }
        }
        // Optional language tag or datatype; parsed, then discarded.
        if self.peek() == Some(b'@') {
            self.bump();
            while self.peek().is_some_and(|b| b.is_ascii_alphanumeric() || b == b'-') {
                self.bump();
            }
        } else if self.peek() == Some(b'^') {
            self.bump();
            if self.bump() != Some(b'^') {
                return Err(self.err("expected `^^` introducing a datatype"));
            }
            self.skip_ws();
            match self.term()? {
                Term::Iri(_) => {}
                other => {
                    return Err(self.err(format!("datatype must be an IRI, found {other:?}")))
                }
            }
        }
        Ok(Term::Literal(out))
    }

    fn unicode_escape(&mut self, digits: usize) -> Result<char, IngestError> {
        let start = self.pos;
        for _ in 0..digits {
            match self.bump() {
                Some(b) if b.is_ascii_hexdigit() => {}
                _ => {
                    return Err(self.err(format!(
                        "bad unicode escape: expected {digits} hex digits"
                    )))
                }
            }
        }
        let hex = &self.text[start..self.pos];
        let code = u32::from_str_radix(hex, 16).expect("hex digits checked");
        char::from_u32(code)
            .ok_or_else(|| self.err(format!("bad unicode escape: U+{hex} is not a scalar value")))
    }

    fn blank(&mut self) -> Result<Term, IngestError> {
        self.bump(); // `_`
        self.bump(); // `:`
        let start = self.pos;
        while self.peek().is_some_and(is_name_byte) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("blank node `_:` needs a label"));
        }
        Ok(Term::Blank(format!("_:{}", &self.text[start..self.pos])))
    }

    fn number(&mut self) -> Result<Term, IngestError> {
        let start = self.pos;
        if matches!(self.peek(), Some(b'+') | Some(b'-')) {
            self.bump();
        }
        let digits_start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some(b'.')
            && self.bytes.get(self.pos + 1).copied().is_some_and(|b| b.is_ascii_digit())
        {
            self.bump();
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.bump();
            }
        }
        if self.pos == digits_start {
            return Err(self.err("expected a number"));
        }
        Ok(Term::Literal(self.text[start..self.pos].to_string()))
    }

    /// `prefix:local`, resolved against `@prefix` declarations.
    fn prefixed_name(&mut self) -> Result<Term, IngestError> {
        let start = self.pos;
        while self.peek().is_some_and(is_name_byte) {
            self.bump();
        }
        let prefix = self.text[start..self.pos].to_string();
        if self.peek() != Some(b':') {
            return Err(self.err(format!(
                "expected an RDF term, found `{}`",
                if prefix.is_empty() {
                    (self.peek().unwrap_or(b'?') as char).to_string()
                } else {
                    prefix.clone()
                }
            )));
        }
        self.bump(); // `:`
        let lstart = self.pos;
        while self.peek().is_some_and(is_name_byte) {
            self.bump();
        }
        let local = &self.text[lstart..self.pos];
        match self.prefixes.get(&prefix) {
            Some(ns) => Ok(Term::Iri(format!("{ns}{local}"))),
            None => Err(self.err(format!("unknown prefix `{prefix}:` (no @prefix declares it)"))),
        }
    }

    fn emit(
        &self,
        subject: &Term,
        verb: &Term,
        object: &Term,
        sink: &mut dyn FactSink,
    ) -> Result<(), IngestError> {
        let verb_iri = match verb {
            Term::Iri(i) => i.as_str(),
            _ => unreachable!("verb() only returns IRIs"),
        };
        let s = self.constant(subject);
        if verb_iri == RDF_TYPE {
            let class = match object {
                Term::Iri(i) => self.shorten(i),
                other => {
                    return Err(self.err(format!(
                        "the object of rdf:type must be a class IRI, found {other:?}"
                    )))
                }
            };
            sink.push(GroundAtom {
                predicate: Predicate::new(&class),
                args: vec![s],
            })
        } else {
            let p = self.shorten(verb_iri);
            let o = self.constant(object);
            sink.push(GroundAtom {
                predicate: Predicate::new(&p),
                args: vec![s, o],
            })
        }
    }

    fn constant(&self, term: &Term) -> Value {
        match term {
            Term::Iri(i) => Value::named(&self.shorten(i)),
            Term::Blank(b) => Value::named(b),
            Term::Literal(l) => Value::named(l),
        }
    }

    fn shorten(&self, iri: &str) -> String {
        if self.full_iris {
            return iri.to_string();
        }
        let local = match iri.rfind(['#', '/']) {
            Some(i) => &iri[i + 1..],
            None => iri,
        };
        if local.is_empty() {
            iri.to_string()
        } else {
            local.to_string()
        }
    }
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' || b == b'%'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ingest;

    fn atoms(text: &str) -> Vec<String> {
        let mut src = RdfSource::from_str("test", text);
        let p = ingest(&mut src).unwrap();
        let mut v: Vec<String> = p.facts.iter().map(|a| a.to_string()).collect();
        v.sort();
        v
    }

    fn rejection(text: &str) -> IngestError {
        let mut src = RdfSource::from_str("test", text);
        ingest(&mut src).unwrap_err()
    }

    #[test]
    fn ntriples_types_and_properties() {
        let got = atoms(
            "<http://ex.org/ann> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/Emp> .\n\
             <http://ex.org/ann> <http://ex.org/worksIn> <http://ex.org/sales> .\n",
        );
        assert_eq!(got, vec!["Emp(ann)", "worksIn(ann,sales)"]);
    }

    #[test]
    fn turtle_prefixes_semicolons_commas() {
        let got = atoms(
            "@prefix ex: <http://ex.org/> .\n\
             ex:ann a ex:Emp ;\n\
                ex:worksIn ex:sales, ex:hr ;\n\
                ex:name \"Ann \\\"A\\\" B\" .\n",
        );
        assert_eq!(
            got,
            vec![
                "Emp(ann)",
                "name(ann,Ann \"A\" B)",
                "worksIn(ann,hr)",
                "worksIn(ann,sales)",
            ]
        );
    }

    #[test]
    fn literals_with_datatype_lang_and_numbers() {
        let got = atoms(
            "@prefix ex: <http://ex.org/> .\n\
             ex:a ex:age 42 .\n\
             ex:a ex:label \"hi\"@en .\n\
             ex:a ex:score \"9.5\"^^<http://www.w3.org/2001/XMLSchema#decimal> .\n",
        );
        assert_eq!(got, vec!["age(a,42)", "label(a,hi)", "score(a,9.5)"]);
    }

    #[test]
    fn full_iris_mode_keeps_absolute_names() {
        let mut src = RdfSource::from_str(
            "t",
            "<http://ex.org/a> <http://ex.org/p> <http://ex.org/b> .",
        )
        .full_iris(true);
        let p = ingest(&mut src).unwrap();
        let got: Vec<String> = p.facts.iter().map(|a| a.to_string()).collect();
        assert_eq!(got, vec!["http://ex.org/p(http://ex.org/a,http://ex.org/b)"]);
    }

    #[test]
    fn blank_nodes_become_named_constants() {
        let got = atoms(
            "@prefix ex: <http://ex.org/> .\n_:b1 a ex:Dept .\nex:ann ex:worksIn _:b1 .",
        );
        assert_eq!(got, vec!["Dept(_:b1)", "worksIn(ann,_:b1)"]);
    }

    #[test]
    fn malformed_inputs_are_line_precise_errors() {
        // Truncated triple: missing object.
        let e = rejection("@prefix ex: <http://e/> .\nex:a ex:p .");
        assert!(matches!(e, IngestError::Rdf { line: 2, .. }), "{e}");
        // Missing final dot at EOF.
        let e = rejection("<http://e/a> <http://e/p> <http://e/b>");
        assert!(e.to_string().contains("not closed"), "{e}");
        // Unknown prefix, reported on its line.
        let e = rejection("# comment\n\nex:a ex:p ex:b .");
        assert!(matches!(e, IngestError::Rdf { line: 3, .. }), "{e}");
        assert!(e.to_string().contains("unknown prefix `ex:`"), "{e}");
        // Bad escape.
        let e = rejection("<http://e/a> <http://e/p> \"bad \\q escape\" .");
        assert!(e.to_string().contains("bad escape `\\q`"), "{e}");
        // Unterminated literal.
        let e = rejection("<http://e/a> <http://e/p> \"no end .");
        assert!(e.to_string().contains("unterminated literal"), "{e}");
        // Unterminated IRI.
        let e = rejection("<http://e/a> <http://e/p> <http://e/b .");
        assert!(e.to_string().contains("unterminated IRI"), "{e}");
        // Literal in subject position.
        let e = rejection("\"x\" <http://e/p> <http://e/b> .");
        assert!(e.to_string().contains("subject"), "{e}");
        // Literal in predicate position.
        let e = rejection("<http://e/a> \"p\" <http://e/b> .");
        assert!(e.to_string().contains("predicate must be an IRI"), "{e}");
    }

    #[test]
    fn from_path_missing_file_is_io_error() {
        let e = RdfSource::from_path(std::path::Path::new("/nonexistent/x.ttl")).unwrap_err();
        assert!(matches!(e, IngestError::Io { .. }), "{e}");
    }
}
