//! Traced experiment runs: the `--trace-json` mode of the experiments
//! binary.
//!
//! Each entry here re-runs a (small, fixed-size) slice of an experiment's
//! workload through the *facades* — [`ChaseRunner`] and [`Engine`] — inside
//! one [`obs::trace_run`] window, and keeps the resulting [`RunReport`].
//! Together the three traced experiments exercise every probe family:
//!
//! * **E9** (chase ablation): oblivious vs restricted chase — chase
//!   rounds, trigger firings, nulls created, restricted head checks, and
//!   the kernel node visits of trigger search.
//! * **E10** (hardness shape): clique enumeration under both join
//!   strategies, then again after growing the graph — WCOJ seeks and
//!   galloping steps, kernel backtracking, and sorted-index full builds
//!   *and* merge-extends (the re-run after growth extends the cached
//!   permutations incrementally).
//! * **E15** (parallel shootout): pool-parallel chase and ground
//!   saturation — pool runs/chunks/width, per-worker utilization, bag
//!   closures and memo hits.
//!
//! [`trace_json`] renders the collected reports as one JSON document,
//! composing [`RunReport::to_json`] (whose names are static identifiers)
//! with this crate's hand-rolled [`crate::json::escape`] for the
//! experiment titles.

use crate::workloads::{
    clique_cq, graph_db, org_db, path_db, plant_clique, random_graph, tc_ontology,
};
use gtgd_chase::{par_ground_saturation, parse_tgds, ChaseRunner, ChaseVariant};
use gtgd_data::obs::{self, RunReport};
use gtgd_data::GroundAtom;
use gtgd_query::{Engine, Repr, Strategy};

/// One experiment's traced run.
#[derive(Debug, Clone)]
pub struct TracedExperiment {
    /// Experiment id ("E9", "E10", "E15").
    pub id: &'static str,
    /// Human-readable description of the traced workload.
    pub title: String,
    /// The probe report of the run.
    pub report: RunReport,
}

/// E9 traced: oblivious and restricted chase of the org ontology through
/// [`ChaseRunner`].
pub fn trace_e9() -> TracedExperiment {
    let sigma =
        parse_tgds("Emp(X) -> WorksIn(X,D). WorksIn(X,D) -> Dept(D). Dept(D) -> Audited(D)")
            .unwrap();
    let db = org_db(100);
    let ((), report) = obs::trace_run(|| {
        let runner = ChaseRunner::new(&sigma);
        let obl = runner.run(&db);
        let res = runner.variant(ChaseVariant::Restricted).run(&db);
        assert!(obl.complete && res.complete);
        assert!(res.instance.len() <= obl.instance.len());
    });
    TracedExperiment {
        id: "E9",
        title: "oblivious vs restricted chase, org ontology (n=100)".into(),
        report,
    }
}

/// E10 traced: clique enumeration through [`Engine::prepare`] under both
/// join strategies and both WCOJ key representations (dense dictionary
/// codes and generic values), plus a morsel-parallel run, then re-run on a
/// grown graph so both incremental-maintenance paths fire: the sorted-index
/// cache merge-extends its permutations and the dense store extends its
/// dictionary/tries.
pub fn trace_e10() -> TracedExperiment {
    let mut g = random_graph(13, 0.5, 97);
    plant_clique(&mut g, 5, 13);
    let db = graph_db(&g);
    let q = clique_cq(4);
    let ((), report) = obs::trace_run(|| {
        let dense = Engine::prepare(&q).strategy(Strategy::Wcoj).answers(&db);
        let generic = Engine::prepare(&q)
            .strategy(Strategy::Wcoj)
            .repr(Repr::Generic)
            .answers(&db);
        let bt = Engine::prepare(&q)
            .strategy(Strategy::Backtrack)
            .answers(&db);
        assert_eq!(dense, bt, "dense WCOJ must agree with the backtracker");
        assert_eq!(generic, bt, "generic WCOJ must agree with the backtracker");
        // Morsel-driven parallel enumeration (for the scheduler probes).
        let par = Engine::prepare(&q)
            .strategy(Strategy::Wcoj)
            .parallel(2)
            .answers(&db);
        assert_eq!(par, bt, "morsel-parallel WCOJ must agree");
        // Grow the (index- and trie-cached) instance and enumerate again:
        // cached permutations are extended by delta-sort + merge and the
        // dense dictionary/tries extend incrementally, not rebuilt.
        let mut grown = db.clone();
        for i in 0..4 {
            let a = format!("x{i}");
            let b = format!("x{}", (i + 1) % 4);
            grown.insert(GroundAtom::named("E", &[a.as_str(), b.as_str()]));
            grown.insert(GroundAtom::named("E", &[b.as_str(), a.as_str()]));
        }
        let _ = Engine::prepare(&q)
            .strategy(Strategy::Wcoj)
            .repr(Repr::Generic)
            .answers(&grown);
        let _ = Engine::prepare(&q).strategy(Strategy::Wcoj).answers(&grown);
    });
    TracedExperiment {
        id: "E10",
        title: "clique enumeration (k=4), both strategies and reprs, then on a grown graph".into(),
        report,
    }
}

/// E15 traced: pool-parallel oblivious chase and parallel ground
/// saturation.
pub fn trace_e15() -> TracedExperiment {
    let tc = tc_ontology();
    let pdb = path_db(120);
    let org = crate::workloads::org_ontology();
    let odb = org_db(200);
    let ((), report) = obs::trace_run(|| {
        let outcome = ChaseRunner::new(&tc).workers(4).run(&pdb);
        assert!(outcome.complete);
        let sat = par_ground_saturation(&odb, &org, 4);
        assert!(sat.len() >= odb.len());
    });
    TracedExperiment {
        id: "E15",
        title: "parallel chase (tc, 4 workers) + parallel ground saturation (org)".into(),
        report,
    }
}

/// The traced experiments, in id order.
pub fn trace_all() -> Vec<TracedExperiment> {
    vec![trace_e9(), trace_e10(), trace_e15()]
}

/// Renders traced experiments as one JSON document:
/// `{"trace": [{"id", "title", "report"}, ...]}`.
pub fn trace_json(traced: &[TracedExperiment]) -> String {
    let mut out = String::from("{\n  \"trace\": [\n");
    for (i, t) in traced.iter().enumerate() {
        out.push_str(&format!(
            "    {{\n      \"id\": \"{}\",\n      \"title\": \"{}\",\n      \"report\": ",
            crate::json::escape(t.id),
            crate::json::escape(&t.title)
        ));
        // Reports indent from column 0; acceptable inside the document.
        out.push_str(&t.report.to_json());
        out.push_str("\n    }");
        if i + 1 < traced.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtgd_data::obs::Metric;
    use std::sync::Mutex;

    // obs state is process-global: traced tests must not interleave.
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn e9_covers_chase_metrics() {
        let _g = GATE.lock().unwrap();
        let t = trace_e9();
        let r = &t.report;
        assert!(r.counter(Metric::ChaseRounds) > 0);
        assert!(r.counter(Metric::TriggerFirings) > 0);
        assert!(r.counter(Metric::NullsCreated) > 0);
        assert!(r.counter(Metric::RestrictedHeadChecks) > 0);
        assert!(r.counter(Metric::KernelNodes) > 0);
        assert!(r.spans.iter().any(|s| s.name == "chase.oblivious"));
        assert!(r.spans.iter().any(|s| s.name == "chase.restricted"));
    }

    #[test]
    fn e10_covers_wcoj_and_index_metrics() {
        let _g = GATE.lock().unwrap();
        let t = trace_e10();
        let r = &t.report;
        assert!(r.counter(Metric::WcojSeeks) > 0);
        assert!(r.counter(Metric::KernelNodes) > 0);
        assert!(r.counter(Metric::KernelBacktracks) > 0);
        assert!(r.counter(Metric::IndexFullBuilds) > 0);
        assert!(
            r.counter(Metric::IndexMergeExtends) > 0,
            "re-run on a grown instance must extend cached indexes"
        );
        assert!(r.counter(Metric::DenseDictMisses) > 0);
        assert!(r.counter(Metric::DenseDictHits) > 0);
        assert!(
            r.counter(Metric::WcojMorselsExecuted) > 0,
            "the parallel run must schedule morsels"
        );
    }

    #[test]
    fn e15_covers_pool_and_saturation_metrics() {
        let _g = GATE.lock().unwrap();
        let t = trace_e15();
        let r = &t.report;
        assert!(r.counter(Metric::ChaseRounds) > 0);
        assert!(r.counter(Metric::TriggerFirings) > 0);
        assert!(r.counter(Metric::PoolRuns) > 0);
        assert!(r.counter(Metric::PoolChunksClaimed) > 0);
        assert_eq!(r.counter(Metric::PoolMaxWidth), 4);
        assert!(r.counter(Metric::BagClosures) > 0);
        assert!(r.spans.iter().any(|s| s.name == "chase.parallel"));
        assert!(r.spans.iter().any(|s| s.name == "chase.saturation"));
    }

    #[test]
    fn trace_json_is_balanced() {
        let _g = GATE.lock().unwrap();
        let json = trace_json(&trace_all());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for id in ["\"E9\"", "\"E10\"", "\"E15\""] {
            assert!(json.contains(id), "{id} missing");
        }
        assert!(json.contains("\"chase.rounds\""));
        assert!(json.contains("\"wcoj.seeks\""));
        assert!(json.contains("\"index.merge_extends\""));
        assert!(json.contains("\"dense.dict_hits\""));
        assert!(json.contains("\"wcoj.morsels_executed\""));
    }
}
