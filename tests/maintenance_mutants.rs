//! Mutation-grade retraction tests: hand-built dependency shapes where
//! every DRed phase outcome — how many atoms land in the over-delete set,
//! how many are rescued, how many are physically removed, how many
//! triggers re-fire — is computed by hand and asserted *exactly*. The
//! differential suite proves end-state equivalence; this suite proves the
//! algorithm takes the intended path to it. A maintenance engine that
//! rescued too eagerly (support counting without over-delete) or too
//! stingily (over-delete without re-derive) would still pass many
//! end-state checks on acyclic data — but not these counts.

use gtgd::chase::{chase, parse_tgds, ChaseBudget, ChaseRunner};
use gtgd::data::{GroundAtom, Instance, Value};
use gtgd::query::instance_isomorphic;

fn db(atoms: &[(&str, &[&str])]) -> Instance {
    Instance::from_atoms(atoms.iter().map(|(p, args)| GroundAtom::named(p, args)))
}

fn atom(p: &str, args: &[&str]) -> GroundAtom {
    GroundAtom::named(p, args)
}

/// Diamond with two base roots: `B(a)` and `C(a)` each derive `D(a)`,
/// which derives `E(a)`. Retracting one root must over-delete the shared
/// cone below it — `D(a)` because one of its supports died, `E(a)`
/// transitively — then rescue `D(a)` through the *other* root's alive
/// firing, and re-derive `E(a)` by re-firing the purged `D -> E` trigger.
#[test]
fn diamond_rescues_shared_atom_and_refires_below_it() {
    let sigma = parse_tgds("B(X) -> D(X). C(X) -> D(X). D(X) -> E(X)").unwrap();
    let d = db(&[("B", &["a"]), ("C", &["a"])]);
    let mut m = ChaseRunner::new(&sigma).maintain(&d);
    assert_eq!(m.instance().len(), 4); // B, C, D, E

    let rep = m.retract([atom("B", &["a"])]);
    // Over-delete walks B(a) → D(a) → E(a).
    assert_eq!(rep.atoms_overdeleted, 3);
    // D(a) is rescued by the alive C-firing; E(a)'s only producer died.
    assert_eq!(rep.atoms_rederived, 1);
    // B(a) and E(a) are physically removed...
    assert_eq!(rep.atoms_removed, 2);
    // ...and E(a) comes back through exactly one re-fired trigger.
    assert_eq!(rep.triggers_fired, 1);
    assert_eq!(rep.atoms_added, 1);
    assert!(m.instance().contains(&atom("D", &["a"])));
    assert!(m.instance().contains(&atom("E", &["a"])));
    assert!(!m.instance().contains(&atom("B", &["a"])));

    // Retracting the second root kills the diamond for good: no rescuer
    // remains, nothing re-fires.
    let rep = m.retract([atom("C", &["a"])]);
    assert_eq!(rep.atoms_overdeleted, 3); // C, D, E
    assert_eq!(rep.atoms_rederived, 0);
    assert_eq!(rep.atoms_removed, 3);
    assert_eq!(rep.triggers_fired, 0);
    assert_eq!(m.instance().len(), 0);
}

/// A pure self-supporting cycle: `A(x) -> B(x)`, `B(x) -> A(x)` with only
/// `A(a)` asserted. After retracting `A(a)`, each derived atom still has
/// a "support" — the other's firing — so naive support counting keeps the
/// pair alive forever. DRed must over-delete the whole cycle (both
/// firings die) and rescue nothing.
#[test]
fn self_supporting_cycle_does_not_rescue_itself() {
    let sigma = parse_tgds("A(X) -> B(X). B(X) -> A(X)").unwrap();
    let d = db(&[("A", &["a"])]);
    let mut m = ChaseRunner::new(&sigma).maintain(&d);
    assert_eq!(m.instance().len(), 2);

    let rep = m.retract([atom("A", &["a"])]);
    assert_eq!(rep.atoms_overdeleted, 2); // A(a), B(a)
    assert_eq!(
        rep.atoms_rederived, 0,
        "a dead cycle must not rescue itself"
    );
    assert_eq!(rep.atoms_removed, 2);
    assert_eq!(rep.triggers_fired, 0);
    assert_eq!(m.instance().len(), 0);
}

/// The same cycle with an external anchor: `C(a)` also derives `A(a)`.
/// Now the over-deleted `A(a)` has an alive support outside the cycle, so
/// it is rescued — and the re-derive chase must re-fire *both* purged
/// cycle triggers to bring `B(a)` back (the `B -> A` re-fire then
/// produces an atom that already exists, adding nothing).
#[test]
fn cycle_with_external_anchor_is_fully_rederived() {
    let sigma = parse_tgds("A(X) -> B(X). B(X) -> A(X). C(X) -> A(X)").unwrap();
    let d = db(&[("A", &["a"]), ("C", &["a"])]);
    let mut m = ChaseRunner::new(&sigma).maintain(&d);
    assert_eq!(m.instance().len(), 3); // A, B, C

    let rep = m.retract([atom("A", &["a"])]);
    assert_eq!(rep.atoms_overdeleted, 2); // A(a), B(a)
    assert_eq!(rep.atoms_rederived, 1); // A(a), via the alive C-firing
    assert_eq!(rep.atoms_removed, 1); // B(a)
    assert_eq!(rep.triggers_fired, 2); // A -> B and B -> A both re-fire
    assert_eq!(rep.atoms_added, 1); // only B(a) is new again
    assert!(m.instance().contains(&atom("A", &["a"])));
    assert!(m.instance().contains(&atom("B", &["a"])));
    assert!(!m.is_base(&atom("A", &["a"])), "A(a) is now derived-only");
}

/// Chained existentials: each `Emp` grows a private null chain
/// `WorksIn(x, ⊥) → Dept(⊥) → Audited(⊥)`. Retracting one employee must
/// remove exactly that employee's chain — nulls and all — and leave the
/// other chain untouched; re-asserting the employee regrows the chain
/// with *fresh* nulls, isomorphic to the original.
#[test]
fn chained_existentials_remove_and_regrow_their_null_cone() {
    let sigma =
        parse_tgds("Emp(X) -> WorksIn(X,D). WorksIn(X,D) -> Dept(D). Dept(D) -> Audited(D)")
            .unwrap();
    let d = db(&[("Emp", &["ann"]), ("Emp", &["bob"])]);
    let mut m = ChaseRunner::new(&sigma).maintain(&d);
    assert_eq!(m.instance().len(), 8); // 2 × (Emp + WorksIn + Dept + Audited)
    let bob_null = m
        .instance()
        .iter()
        .find(|a| {
            a.predicate == gtgd::data::Predicate::new("WorksIn") && a.args[0] == Value::named("bob")
        })
        .map(|a| a.args[1])
        .expect("bob has a chain");

    let rep = m.retract([atom("Emp", &["ann"])]);
    assert_eq!(rep.atoms_overdeleted, 4, "exactly ann's chain");
    assert_eq!(rep.atoms_rederived, 0);
    assert_eq!(rep.atoms_removed, 4);
    assert_eq!(rep.triggers_fired, 0);
    assert_eq!(m.instance().len(), 4);
    // Bob's chain survives bit-identically (same null, not an isomorph).
    assert!(m.instance().contains(&GroundAtom::new(
        gtgd::data::Predicate::new("Dept"),
        vec![bob_null]
    )));

    let rep = m.insert([atom("Emp", &["ann"])]);
    assert_eq!(
        rep.triggers_fired, 3,
        "the chain regrows one rule at a time"
    );
    assert_eq!(rep.atoms_added, 4); // Emp + three fresh-null links
    let scratch = chase(&d, &sigma, &ChaseBudget::unbounded());
    assert!(instance_isomorphic(m.instance(), &scratch.instance));
}

/// A two-atom body whose supports die one at a time: `R(x,y), B(x) -> T(x,y)`.
/// Retracting the guard `R` kills the firing even though `B` survives;
/// re-asserting `R` re-fires it. The firing must also die when only the
/// side atom `B` is retracted.
#[test]
fn multi_support_firing_dies_with_either_support() {
    let sigma = parse_tgds("R(X,Y), B(X) -> T(X,Y)").unwrap();
    let d = db(&[("R", &["a", "b"]), ("B", &["a"])]);
    for victim in [atom("R", &["a", "b"]), atom("B", &["a"])] {
        let mut m = ChaseRunner::new(&sigma).maintain(&d);
        assert!(m.instance().contains(&atom("T", &["a", "b"])));
        let rep = m.retract([victim.clone()]);
        assert_eq!(rep.atoms_overdeleted, 2, "victim {victim:?}");
        assert_eq!(rep.atoms_rederived, 0, "victim {victim:?}");
        assert_eq!(rep.atoms_removed, 2, "victim {victim:?}");
        assert!(!m.instance().contains(&atom("T", &["a", "b"])));
        // Re-asserting the victim restores the fixpoint by re-firing.
        let rep = m.insert([victim.clone()]);
        assert_eq!(rep.triggers_fired, 1, "victim {victim:?}");
        assert!(m.instance().contains(&atom("T", &["a", "b"])));
    }
}

/// Retracting a batch whose members support each other's cones must not
/// double-count: the over-delete set is a set, and rescue still works for
/// atoms anchored outside the batch.
#[test]
fn batch_retraction_counts_each_atom_once() {
    let sigma = parse_tgds("B(X) -> D(X). C(X) -> D(X). D(X) -> E(X)").unwrap();
    let d = db(&[("B", &["a"]), ("C", &["a"])]);
    let mut m = ChaseRunner::new(&sigma).maintain(&d);
    // Retract both roots at once: the shared D(a)/E(a) cone appears in
    // both roots' walks but must be counted once.
    let rep = m.retract([atom("B", &["a"]), atom("C", &["a"])]);
    assert_eq!(rep.atoms_overdeleted, 4); // B, C, D, E — each once
    assert_eq!(rep.atoms_rederived, 0);
    assert_eq!(rep.atoms_removed, 4);
    assert_eq!(m.instance().len(), 0);
}

/// An atom that is both asserted and derived: base status alone must
/// rescue it, and retracting it later (when it is no longer derived)
/// must remove it.
#[test]
fn base_and_derived_atom_needs_both_retractions() {
    let sigma = parse_tgds("A(X) -> B(X)").unwrap();
    let d = db(&[("A", &["a"]), ("B", &["a"])]);
    let mut m = ChaseRunner::new(&sigma).maintain(&d);
    assert_eq!(m.instance().len(), 2);

    // Retract the support: B(a) is over-deleted but rescued as a base fact.
    let rep = m.retract([atom("A", &["a"])]);
    assert_eq!(
        (
            rep.atoms_overdeleted,
            rep.atoms_rederived,
            rep.atoms_removed
        ),
        (2, 1, 1)
    );
    assert!(m.instance().contains(&atom("B", &["a"])));

    // Now B(a) is base-only; retracting it empties the instance.
    let rep = m.retract([atom("B", &["a"])]);
    assert_eq!(
        (
            rep.atoms_overdeleted,
            rep.atoms_rederived,
            rep.atoms_removed
        ),
        (1, 0, 1)
    );
    assert_eq!(m.instance().len(), 0);
}

/// Rescue must be transitive: a deep chain anchored both under the victim
/// and under a survivor keeps its entire tail, with no spurious re-fires
/// of still-alive firings.
#[test]
fn deep_chain_with_mid_rescue_keeps_its_tail() {
    // Two roots feed F; below F hangs a 3-link chain.
    let sigma =
        parse_tgds("B(X) -> F(X). C(X) -> F(X). F(X) -> G(X). G(X) -> H(X). H(X) -> K(X)").unwrap();
    let d = db(&[("B", &["a"]), ("C", &["a"])]);
    let mut m = ChaseRunner::new(&sigma).maintain(&d);
    assert_eq!(m.instance().len(), 6); // B, C, F, G, H, K

    let rep = m.retract([atom("B", &["a"])]);
    // The walk reaches B, F, G, H, K; F is rescued via C's firing; the
    // tail G, H, K is removed and then re-derived link by link.
    assert_eq!(rep.atoms_overdeleted, 5);
    assert_eq!(rep.atoms_rederived, 1);
    assert_eq!(rep.atoms_removed, 4); // B, G, H, K
    assert_eq!(rep.triggers_fired, 3); // F->G, G->H, H->K
    assert_eq!(rep.atoms_added, 3);
    assert_eq!(m.instance().len(), 5);
    let scratch = chase(&db(&[("C", &["a"])]), &sigma, &ChaseBudget::unbounded());
    assert!(instance_isomorphic(m.instance(), &scratch.instance));
}
