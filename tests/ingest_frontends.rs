//! Robustness and determinism suite for the three ingestion frontends
//! (DESIGN.md §15). The contract under test: **every** rejection is a
//! described [`IngestError`] — with a location where one exists — and no
//! input, however mangled, panics a frontend. Plus the generator's
//! byte-determinism guarantee and the streaming EGD key check.

use gtgd::ingest::{
    ingest, CsvSource, IngestError, LubmConfig, LubmSource, OwlSource, RdfSource, Source,
};

/// Ingests and returns the error, asserting the frontend rejected.
fn must_reject(src: &mut dyn Source) -> IngestError {
    match ingest(src) {
        Ok(p) => panic!(
            "{}: expected rejection, got a program with {} facts",
            src.name(),
            p.facts.len()
        ),
        Err(e) => {
            let msg = e.to_string();
            assert!(!msg.is_empty(), "empty error message");
            e
        }
    }
}

// ---------------------------------------------------------------- RDF --

#[test]
fn rdf_truncated_triples_are_line_precise() {
    let cases = [
        ("<a> <b>", 1),                                // missing object
        ("<a> <b> <c> .\n<d> <e>", 2),                 // truncated second triple
        ("<a> <b> <c> .\n<d> <e> \"unterminated", 2),  // open literal
        ("<a> <b> <c>", 1),                            // missing terminating dot
        ("@prefix ex: <http://e.org/", 1),             // unterminated IRI ref
        ("<a> <b> <c> ;\n", 2),                        // dangling predicate list (EOF on line 2)
    ];
    for (text, want_line) in cases {
        let e = must_reject(&mut RdfSource::from_str("t", text));
        match e {
            IngestError::Rdf { line, ref message } => {
                assert_eq!(line, want_line, "{text:?}: {message}");
                assert!(!message.is_empty());
            }
            other => panic!("{text:?}: expected Rdf error, got {other}"),
        }
    }
}

#[test]
fn rdf_bad_escapes_are_rejected_not_mangled() {
    for text in [
        "<a> <b> \"bad \\q escape\" .",
        "<a> <b> \"\\u12\" .",       // truncated \u
        "<a> <b> \"\\UDEADBEEF\" .", // not a scalar value
    ] {
        let e = must_reject(&mut RdfSource::from_str("t", text));
        assert!(matches!(e, IngestError::Rdf { .. }), "{text:?}: {e}");
    }
}

/// Seeded mutation fuzz: random truncations and byte substitutions of a
/// valid document must parse or reject, never panic. (Panics would abort
/// the test process, so plain invocation is the assertion.)
#[test]
fn rdf_seeded_mutations_never_panic() {
    let valid = LubmSource::new(LubmConfig {
        universities: 1,
        seed: 3,
    })
    .ntriples();
    let mut rng = gtgd::data::rng::Rng::seed(0xf00d);
    for _ in 0..200 {
        let mut bytes = valid.as_bytes().to_vec();
        bytes.truncate(rng.range(0, bytes.len()));
        if !bytes.is_empty() && rng.chance(0.7) {
            let i = rng.range(0, bytes.len());
            bytes[i] = rng.next_u64() as u8;
        }
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = ingest(&mut RdfSource::from_str("fuzz", &text));
    }
}

// ---------------------------------------------------------------- OWL --

#[test]
fn owl_out_of_fragment_axioms_name_construct_and_line() {
    let cases = [
        (
            "SubClassOf(ex:A ObjectUnionOf(ex:B ex:C))",
            "ObjectUnionOf",
        ),
        (
            "SubClassOf(ex:A ObjectAllValuesFrom(ex:r ex:B))",
            "ObjectAllValuesFrom",
        ),
        (
            "SubClassOf(ex:A ObjectComplementOf(ex:B))",
            "ObjectComplementOf",
        ),
        ("TransitiveObjectProperty(ex:r)", "TransitiveObjectProperty"),
        ("FunctionalObjectProperty(ex:r)", "FunctionalObjectProperty"),
    ];
    for (axiom, construct) in cases {
        let doc = format!(
            "Prefix(ex:=<http://e.org/>)\nOntology(\nDeclaration(Class(ex:A))\n{axiom}\n)\n"
        );
        let e = must_reject(&mut OwlSource::from_str("t", &doc));
        let msg = e.to_string();
        assert!(msg.contains(construct), "{axiom}: {msg}");
        match e {
            IngestError::Fragment { line, .. } | IngestError::Owl { line, .. } => {
                assert_eq!(line, 4, "{axiom}: wrong line in {msg}")
            }
            other => panic!("{axiom}: expected Fragment/Owl error, got {other}"),
        }
    }
}

#[test]
fn owl_syntax_errors_are_described() {
    for doc in [
        "Ontology(",                        // unbalanced
        "Prefix(ex:=<http://e.org/>)\nOntology(SubClassOf(ex:A))\n", // missing RHS
        "Ontology(SubClassOf(ex:A :B))",      // undeclared prefix
        "Garbage(:x)",
    ] {
        let e = must_reject(&mut OwlSource::from_str("t", doc));
        assert!(
            matches!(e, IngestError::Owl { .. } | IngestError::Fragment { .. }),
            "{doc:?}: {e}"
        );
    }
}

#[test]
fn owl_seeded_mutations_never_panic() {
    let valid = gtgd::ingest::ONTOLOGY_OWL;
    let mut rng = gtgd::data::rng::Rng::seed(0xbeef);
    for _ in 0..200 {
        let mut bytes = valid.as_bytes().to_vec();
        bytes.truncate(rng.range(0, bytes.len()));
        if !bytes.is_empty() && rng.chance(0.7) {
            let i = rng.range(0, bytes.len());
            bytes[i] = rng.next_u64() as u8;
        }
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = ingest(&mut OwlSource::from_str("fuzz", &text));
    }
}

// ---------------------------------------------------------------- CSV --

const EMP_MANIFEST: &str = "\
table Emp(id, dept) from emp.csv with header
key Emp(id)
table Dept(name) from dept.csv
include Emp(dept) -> Dept(name)
";

#[test]
fn csv_arity_mismatch_names_file_and_line() {
    let mut src = CsvSource::from_manifest_str("t", EMP_MANIFEST)
        .with_inline("emp.csv", "id,dept\nann,hr\nbob,hr,EXTRA\n")
        .with_inline("dept.csv", "hr\n");
    let e = must_reject(&mut src);
    match e {
        IngestError::Csv {
            ref file,
            line,
            ref message,
        } => {
            assert!(file.contains("emp.csv"), "{e}");
            assert_eq!(line, 3);
            assert!(message.contains('2') && message.contains('3'), "{message}");
        }
        other => panic!("expected Csv error, got {other}"),
    }
}

#[test]
fn csv_key_violation_reports_both_lines() {
    let mut src = CsvSource::from_manifest_str("t", EMP_MANIFEST)
        .with_inline("emp.csv", "id,dept\nann,hr\nbob,it\nann,it\n")
        .with_inline("dept.csv", "hr\nit\n");
    let e = must_reject(&mut src);
    match e {
        IngestError::KeyViolation {
            ref table,
            first_line,
            second_line,
            ..
        } => {
            assert_eq!(table, "Emp");
            assert_eq!((first_line, second_line), (2, 4));
        }
        other => panic!("expected KeyViolation, got {other}"),
    }
    // Exact duplicate rows are not violations — same key, same rest.
    let mut ok = CsvSource::from_manifest_str("t", EMP_MANIFEST)
        .with_inline("emp.csv", "id,dept\nann,hr\nann,hr\n")
        .with_inline("dept.csv", "hr\n");
    ingest(&mut ok).expect("exact duplicates are fine");
}

#[test]
fn csv_manifest_errors_are_line_precise() {
    let cases = [
        ("table Emp(id from emp.csv", 1),
        ("table Emp(id) from emp.csv\ntable Emp(id) from other.csv", 2),
        ("table Emp(id) from emp.csv\nkey Nope(id)", 2),
        (
            "table Emp(id) from emp.csv\ntable D(a,b) from d.csv\ninclude Emp(id) -> D(a,b)",
            3,
        ),
        ("", 1),
    ];
    for (manifest, want_line) in cases {
        let e = must_reject(&mut CsvSource::from_manifest_str("t", manifest));
        match e {
            IngestError::Manifest { line, ref message } => {
                assert_eq!(line, want_line, "{manifest:?}: {message}")
            }
            other => panic!("{manifest:?}: expected Manifest error, got {other}"),
        }
    }
}

#[test]
fn csv_quoting_errors_are_rejected() {
    for body in ["id,dept\n\"ann,hr\n", "id,dept\nan\"n,hr\n", "id,dept\n\"ann\"x,hr\n"] {
        let mut src = CsvSource::from_manifest_str("t", "table Emp(id, dept) from emp.csv with header\n")
            .with_inline("emp.csv", body);
        let e = must_reject(&mut src);
        assert!(matches!(e, IngestError::Csv { .. }), "{body:?}: {e}");
    }
}

#[test]
fn csv_seeded_mutations_never_panic() {
    let mut rng = gtgd::data::rng::Rng::seed(0xcafe);
    let manifest = EMP_MANIFEST;
    let csv = "id,dept\nann,hr\nbob,it\n";
    for _ in 0..200 {
        let mutate = |text: &str, rng: &mut gtgd::data::rng::Rng| {
            let mut bytes = text.as_bytes().to_vec();
            bytes.truncate(rng.range(0, bytes.len()));
            if !bytes.is_empty() && rng.chance(0.7) {
                let i = rng.range(0, bytes.len());
                bytes[i] = rng.next_u64() as u8;
            }
            String::from_utf8_lossy(&bytes).into_owned()
        };
        let (m, c) = (mutate(manifest, &mut rng), mutate(csv, &mut rng));
        let mut src = CsvSource::from_manifest_str("fuzz", &m)
            .with_inline("emp.csv", &c)
            .with_inline("dept.csv", "hr\nit\n");
        let _ = ingest(&mut src);
    }
}

// -------------------------------------------------------- determinism --

#[test]
fn generator_is_byte_deterministic_and_seed_sensitive() {
    let cfg = LubmConfig {
        universities: 2,
        seed: 41,
    };
    assert_eq!(
        LubmSource::new(cfg).ntriples(),
        LubmSource::new(cfg).ntriples()
    );
    assert_eq!(
        LubmSource::new(cfg).datalog_facts(),
        LubmSource::new(cfg).datalog_facts()
    );
    let other = LubmSource::new(LubmConfig {
        universities: 2,
        seed: 42,
    });
    assert_ne!(LubmSource::new(cfg).ntriples(), other.ntriples());
}

#[test]
fn ingest_is_deterministic_across_runs() {
    let cfg = LubmConfig {
        universities: 1,
        seed: 5,
    };
    let a = ingest(&mut LubmSource::new(cfg)).unwrap();
    let b = ingest(&mut LubmSource::new(cfg)).unwrap();
    assert_eq!(a.facts, b.facts);
    assert_eq!(a.tgds.len(), b.tgds.len());
}
