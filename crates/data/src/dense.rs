//! Dense-dictionary columnar storage: order-preserving `Value → u32`
//! codes, per-predicate encoded column arenas, and flat sorted trie
//! levels for the worst-case-optimal join executor.
//!
//! The generic WCOJ path compares [`Value`]s through a sorted-permutation
//! indirection: every key access is `cols[level][perm[i]]` — two dependent
//! loads, 16-byte keys. This module recompresses relations so the executor
//! gallops over plain `&[u32]` slices instead:
//!
//! * [`Dict`] — one **global** dictionary per [`crate::Instance`] mapping
//!   every value that occurs in any encoded relation to a dense `u32`
//!   code. Codes are **order-preserving** (`code(a) < code(b)` iff
//!   `a < b`), so comparing codes *is* comparing values — leapfrog
//!   intersections across atoms stay valid without ever decoding.
//! * [`DenseTrie`] — per `(predicate, arity, column order)`, the sorted
//!   row permutation together with **materialized per-level key arrays**:
//!   `level(l)[i]` is the code of the `i`-th sorted row at trie level `l`.
//!   Seeks touch one cache-linear `u32` array, no permutation chasing.
//! * [`DenseStore`] — the epoch-consistent owner: encoded tables, tries,
//!   and the dictionary evolve together under one lock; readers take
//!   `Arc` snapshots that stay mutually consistent even while the store
//!   moves on (copy-on-write on remap).
//!
//! **Growth discipline.** Appending a value larger than every existing
//! one (the common case: chase-invented nulls — [`Value::Null`] labels are
//! globally monotone and nulls sort after all named constants) extends
//! the dictionary in place without touching any code. Only a value that
//! sorts *before* an existing one forces a **remap**: every code shifts
//! by the insertion offsets, applied in one pass over all encoded storage
//! (`O(cells)`), never a re-sort — the remap is monotone, so every trie's
//! permutation survives unchanged. The `dict_hits` / `dict_misses` /
//! `remaps` counters (also surfaced as `dense.*` obs metrics) make the
//! contract observable; `tests/instance_invariants.rs` asserts it.

use crate::columnar::PredColumns;
use crate::obs;
use crate::schema::Predicate;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, RwLock};

/// The global order-preserving dictionary of one [`DenseStore`] epoch:
/// `decode(code(v)) == v` and `code(a) < code(b) ⇔ a < b` for all values
/// present. Immutable once handed out (snapshots clone-on-write).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dict {
    /// All encoded values, ascending; a value's code is its index.
    sorted: Vec<Value>,
    code_of: HashMap<Value, u32>,
}

impl Dict {
    /// Number of distinct encoded values.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The code of `v`, if `v` occurs in any encoded relation of this
    /// epoch. `None` means `v` is provably absent from every encoded
    /// column.
    #[inline]
    pub fn code(&self, v: Value) -> Option<u32> {
        self.code_of.get(&v).copied()
    }

    /// The value behind a code (codes come from this dictionary's own
    /// epoch; panics on a foreign code).
    #[inline]
    pub fn decode(&self, code: u32) -> Value {
        self.sorted[code as usize]
    }

    /// All encoded values in code (= value) order.
    pub fn values(&self) -> &[Value] {
        &self.sorted
    }
}

/// One predicate's tuples under one column order, dense-encoded: the
/// lexicographically sorted row permutation plus flat per-level key
/// arrays. This is what a dense trie cursor walks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseTrie {
    /// Row ids sorted lex by the encoded key tuple, ties by row id —
    /// exactly the order of [`crate::SortedPermutation`] for the same
    /// columns (codes are order-preserving).
    perm: Vec<u32>,
    /// `levels[l][i]`: the code at trie level `l` of the `i`-th sorted
    /// row. One flat array per level; `levels.len()` is the arity.
    levels: Vec<Vec<u32>>,
    rows: usize,
    /// CSR trie derived from `levels`: `entries[l]` holds each level's
    /// **distinct** keys (within their parent group), concatenated in
    /// parent order. A trie cursor walks these instead of the
    /// row-duplicated `levels`: `next` is `pos + 1`, a key group is one
    /// entry, and seeks gallop over short duplicate-free `u32` runs.
    entries: Vec<Vec<u32>>,
    /// `child[l][e] .. child[l][e + 1]`: the entry range at level `l + 1`
    /// below entry `e` of level `l` (one offsets array per non-leaf
    /// level).
    child: Vec<Vec<u32>>,
}

impl DenseTrie {
    /// Number of rows covered.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The sorted key codes of trie level `l` (aligned with [`DenseTrie::perm`]).
    #[inline]
    pub fn level(&self, l: usize) -> &[u32] {
        &self.levels[l]
    }

    /// The sorted row ids (row `perm()[i]` of the arena is the `i`-th
    /// trie row).
    pub fn perm(&self) -> &[u32] {
        &self.perm
    }

    /// The distinct keys of trie level `l` in CSR entry order (grouped by
    /// parent entry, ascending within each group).
    #[inline]
    pub fn entry_keys(&self, l: usize) -> &[u32] {
        &self.entries[l]
    }

    /// The child entry range at level `l + 1` below entry `e` of level
    /// `l`.
    #[inline]
    pub fn entry_children(&self, l: usize, e: usize) -> (u32, u32) {
        let c = &self.child[l];
        (c[e], c[e + 1])
    }

    /// The raw child-offset array of non-leaf level `l`: entry `e`'s
    /// children at level `l + 1` span `offsets[e] .. offsets[e + 1]`.
    #[inline]
    pub fn entry_child_offsets(&self, l: usize) -> &[u32] {
        &self.child[l]
    }

    /// Builds the CSR arrays from freshly (re)computed flat levels.
    fn build_csr(levels: &[Vec<u32>], rows: usize) -> (Vec<Vec<u32>>, Vec<Vec<u32>>) {
        let depth = levels.len();
        let mut entries: Vec<Vec<u32>> = vec![Vec::new(); depth];
        let mut child: Vec<Vec<u32>> = vec![Vec::new(); depth.saturating_sub(1)];
        for i in 0..rows {
            // The first level where row i diverges from row i-1 starts a
            // fresh entry there and at every level below.
            let fd = if i == 0 {
                0
            } else {
                (0..depth)
                    .find(|&l| levels[l][i] != levels[l][i - 1])
                    .unwrap_or(depth)
            };
            for l in fd..depth {
                if l + 1 < depth {
                    child[l].push(entries[l + 1].len() as u32);
                }
                entries[l].push(levels[l][i]);
            }
        }
        for (l, c) in child.iter_mut().enumerate() {
            c.push(entries[l + 1].len() as u32);
        }
        (entries, child)
    }
}

/// Row-order encoded mirror of one predicate's [`PredColumns`]:
/// `cols[j][r]` is the code of argument `j` of row `r`.
#[derive(Debug, Clone, Default)]
struct EncodedTable {
    cols: Vec<Vec<u32>>,
    rows: usize,
}

/// Counters and sizes of a [`DenseStore`], for asserting the
/// append-mostly growth contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DenseStats {
    /// Distinct values in the dictionary.
    pub dict_size: usize,
    /// Encode lookups answered by an existing code.
    pub dict_hits: usize,
    /// Encode lookups that minted a fresh code.
    pub dict_misses: usize,
    /// Order-preserving remaps (a fresh value sorted before an existing
    /// one). Appends — including every chase-invented null — never remap.
    pub remaps: usize,
    /// Dense tries currently materialized.
    pub tries: usize,
}

/// One encoded table in portable form: `cols[j][r]` is the dictionary
/// code of argument `j` of arena row `r`. Part of [`DenseExport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseTableExport {
    /// The encoded predicate.
    pub predicate: Predicate,
    /// The encoded arity.
    pub arity: u16,
    /// Code columns, row-aligned with the predicate's arena.
    pub cols: Vec<Vec<u32>>,
}

/// One dense trie in portable form: only the sorted permutation is
/// persisted — the flat level arrays and the CSR skeleton are linear-time
/// gathers from the encoded table, so re-deriving them at load keeps the
/// snapshot small without paying any sort. Part of [`DenseExport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseTrieExport {
    /// The predicate the trie covers.
    pub predicate: Predicate,
    /// The covered arity.
    pub arity: u16,
    /// The trie's column order.
    pub order: Vec<u16>,
    /// Row ids sorted lex by encoded key, ties by row id.
    pub perm: Vec<u32>,
}

/// Portable snapshot of a [`DenseStore`]: the global dictionary (in code
/// order), every encoded table and trie, and the growth counters.
/// Produced by [`crate::Instance::export_dense`], re-installed by
/// [`crate::Instance::install_dense`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DenseExport {
    /// All dictionary values, ascending (a value's code is its index).
    pub dict: Vec<Value>,
    /// Encoded tables, ordered by `(predicate name, arity)`.
    pub tables: Vec<DenseTableExport>,
    /// Dense tries, ordered by `(predicate name, arity, column order)`.
    pub tries: Vec<DenseTrieExport>,
    /// Persisted `dict_hits` counter.
    pub dict_hits: usize,
    /// Persisted `dict_misses` counter.
    pub dict_misses: usize,
    /// Persisted `remaps` counter.
    pub remaps: usize,
}

/// Trie key: `(predicate, arity, column order)` — same vocabulary as the
/// sorted-permutation cache.
type TrieKey = (Predicate, u16, Vec<u16>);

/// The mutable core: dictionary, encoded tables, and tries move through
/// epochs together (every mutation happens under one write lock, so any
/// snapshot taken under the read lock is internally consistent).
#[derive(Debug, Default)]
struct Inner {
    dict: Arc<Dict>,
    tables: HashMap<(Predicate, u16), EncodedTable>,
    tries: HashMap<TrieKey, Arc<DenseTrie>>,
    /// What snapshots hand out for each key: usually the key's own trie,
    /// but when two column orders of one predicate produce **identical**
    /// level arrays (symmetric relations are the canonical case: `E`
    /// sorted `(src, dst)` equals `E` sorted `(dst, src)`), both keys
    /// share one `Arc` — the executor then recognizes duplicate cursors
    /// by pointer and drops redundant leapfrog participants. `perm` may
    /// differ between the aliased keys, so delta extension keeps reading
    /// the per-key trie in `tries`; cursors never touch `perm`.
    canon: HashMap<TrieKey, Arc<DenseTrie>>,
}

/// Lazily built, incrementally maintained dense-encoded storage. Interior
/// mutability mirrors [`crate::columnar::SortedIndexCache`]: queries
/// build/extend through `&Instance`, concurrent readers share `Arc`
/// snapshots.
#[derive(Debug, Default)]
pub struct DenseStore {
    inner: RwLock<Inner>,
    dict_hits: AtomicUsize,
    dict_misses: AtomicUsize,
    remaps: AtomicUsize,
}

impl Clone for DenseStore {
    fn clone(&self) -> DenseStore {
        let inner = self.inner.read().expect("dense lock");
        DenseStore {
            inner: RwLock::new(Inner {
                dict: Arc::clone(&inner.dict),
                tables: inner.tables.clone(),
                // Shared `Arc`s are safe: any later remap in either copy
                // goes through `Arc::make_mut` and clones first.
                tries: inner.tries.clone(),
                canon: inner.canon.clone(),
            }),
            dict_hits: AtomicUsize::new(self.dict_hits.load(AtomicOrdering::Relaxed)),
            dict_misses: AtomicUsize::new(self.dict_misses.load(AtomicOrdering::Relaxed)),
            remaps: AtomicUsize::new(self.remaps.load(AtomicOrdering::Relaxed)),
        }
    }
}

impl DenseStore {
    /// Drops the encoded tables, tries, and canon entries of the touched
    /// `(predicate, arity)` relations after rows were removed from their
    /// arenas. The encoded mirrors are row-aligned and grow-only
    /// (`snapshot` keys freshness on `trie.rows == arena.rows`), so a
    /// shrunk relation cannot be patched in place — the next snapshot
    /// rebuilds it from the surviving arena rows.
    ///
    /// The dictionary is retained: codes of surviving values are
    /// unchanged, and an entry for a value no longer present is harmless —
    /// it only means `Dict::code` answers `Some` for a value every seek
    /// will miss anyway (the `None ⇒ absent` direction still holds).
    /// Untouched relations keep their tries; canon aliases only ever link
    /// column orders of one `(predicate, arity)`, so dropping by that key
    /// can never leave a dangling alias.
    pub(crate) fn invalidate_relations(
        &self,
        touched: &std::collections::HashSet<(Predicate, u16)>,
    ) {
        if touched.is_empty() {
            return;
        }
        let mut inner = self.inner.write().expect("dense lock");
        inner.tables.retain(|k, _| !touched.contains(k));
        inner.tries.retain(|k, _| !touched.contains(&(k.0, k.1)));
        inner.canon.retain(|k, _| !touched.contains(&(k.0, k.1)));
    }

    /// Exports the store in portable form (one read-lock hold), with
    /// tables and tries deterministically ordered so snapshot bytes are
    /// stable across runs.
    pub(crate) fn export_state(&self) -> DenseExport {
        let inner = self.inner.read().expect("dense lock");
        let mut tables: Vec<DenseTableExport> = inner
            .tables
            .iter()
            .map(|(&(p, arity), t)| DenseTableExport {
                predicate: p,
                arity,
                cols: t.cols.clone(),
            })
            .collect();
        tables.sort_by_key(|t| (t.predicate.name(), t.arity));
        let mut tries: Vec<DenseTrieExport> = inner
            .tries
            .iter()
            .map(|(&(p, arity, ref order), t)| DenseTrieExport {
                predicate: p,
                arity,
                order: order.clone(),
                perm: t.perm.clone(),
            })
            .collect();
        tries.sort_by(|a, b| {
            (a.predicate.name(), a.arity, &a.order).cmp(&(b.predicate.name(), b.arity, &b.order))
        });
        DenseExport {
            dict: inner.dict.sorted.clone(),
            tables,
            tries,
            dict_hits: self.dict_hits.load(AtomicOrdering::Relaxed),
            dict_misses: self.dict_misses.load(AtomicOrdering::Relaxed),
            remaps: self.remaps.load(AtomicOrdering::Relaxed),
        }
    }

    /// Re-installs an exported store, validating every section against
    /// the live arenas; invalid sections are skipped (they rebuild lazily
    /// on the next `snapshot`, the normal cold path), never trusted.
    ///
    /// * The dictionary must be strictly ascending under **this
    ///   process's** value order — a snapshot written under a different
    ///   symbol-interning order fails here and the whole import becomes a
    ///   no-op (codes are meaningless without the dictionary).
    /// * A table must be row- and cell-exact: every code must decode to
    ///   the arena's value. One linear pass — cheaper than re-encoding
    ///   (no hashing), and it proves the codes rather than assuming them.
    /// * A trie needs its table installed and its permutation sorted by
    ///   encoded key (ties by row id); levels and the CSR skeleton are
    ///   re-gathered in `O(rows × depth)` with **no sort** — this is the
    ///   "sidecar rehydration" that keeps load sequential-read dominated.
    ///
    /// Returns `(tables installed, tries installed)`.
    pub(crate) fn install_state(
        &self,
        export: &DenseExport,
        columns: &HashMap<(Predicate, u16), PredColumns>,
    ) -> (usize, usize) {
        if !export.dict.windows(2).all(|w| w[0] < w[1]) {
            return (0, 0);
        }
        let dict = Arc::new(Dict {
            sorted: export.dict.clone(),
            code_of: export
                .dict
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, i as u32))
                .collect(),
        });
        let mut inner = self.inner.write().expect("dense lock");
        if !inner.tables.is_empty() || !inner.tries.is_empty() {
            return (0, 0); // only a pristine store accepts an import
        }
        let mut tables_in = 0usize;
        for t in &export.tables {
            let Some(pc) = columns.get(&(t.predicate, t.arity)) else {
                continue;
            };
            let rows = pc.rows();
            let exact = t.cols.len() == t.arity as usize
                && t.cols.iter().all(|c| c.len() == rows)
                && (0..t.arity as usize).all(|j| {
                    t.cols[j].iter().zip(pc.col(j)).all(|(&code, &v)| {
                        (code as usize) < dict.sorted.len() && dict.sorted[code as usize] == v
                    })
                });
            if !exact {
                continue;
            }
            inner.tables.insert(
                (t.predicate, t.arity),
                EncodedTable {
                    cols: t.cols.clone(),
                    rows,
                },
            );
            tables_in += 1;
        }
        let mut tries_in = 0usize;
        for te in &export.tries {
            let Some(table) = inner.tables.get(&(te.predicate, te.arity)) else {
                continue;
            };
            let rows = table.rows;
            if te.perm.len() != rows
                || rows == 0
                || te.order.iter().any(|&j| j as usize >= table.cols.len())
            {
                continue;
            }
            let mut seen = vec![false; rows];
            if !te.perm.iter().all(|&r| {
                let ok = (r as usize) < rows && !seen[r as usize];
                if ok {
                    seen[r as usize] = true;
                }
                ok
            }) {
                continue;
            }
            let key_of = |r: u32| -> (Vec<u32>, u32) {
                let key = te
                    .order
                    .iter()
                    .map(|&j| table.cols[j as usize][r as usize])
                    .collect();
                (key, r)
            };
            if !te.perm.windows(2).all(|w| key_of(w[0]) <= key_of(w[1])) {
                continue;
            }
            let levels: Vec<Vec<u32>> = te
                .order
                .iter()
                .map(|&j| {
                    let col = &table.cols[j as usize];
                    te.perm.iter().map(|&r| col[r as usize]).collect()
                })
                .collect();
            let (entries, child) = DenseTrie::build_csr(&levels, rows);
            inner.tries.insert(
                (te.predicate, te.arity, te.order.clone()),
                Arc::new(DenseTrie {
                    perm: te.perm.clone(),
                    levels,
                    rows,
                    entries,
                    child,
                }),
            );
            tries_in += 1;
        }
        // Re-derive the canon aliasing (identical-content siblings share
        // one Arc) exactly as `ensure_trie` would have.
        let keys: Vec<TrieKey> = inner.tries.keys().cloned().collect();
        for key in keys {
            let arc = Arc::clone(&inner.tries[&key]);
            let shared = inner
                .canon
                .iter()
                .find(|(k2, t2)| {
                    k2.0 == key.0 && k2.1 == key.1 && k2.2 != key.2 && t2.levels == arc.levels
                })
                .map(|(_, t2)| Arc::clone(t2));
            inner.canon.insert(key, shared.unwrap_or(arc));
        }
        if tables_in > 0 || !export.dict.is_empty() {
            inner.dict = dict;
        }
        self.dict_hits
            .store(export.dict_hits, AtomicOrdering::Relaxed);
        self.dict_misses
            .store(export.dict_misses, AtomicOrdering::Relaxed);
        self.remaps.store(export.remaps, AtomicOrdering::Relaxed);
        (tables_in, tries_in)
    }

    /// Current counters.
    pub fn stats(&self) -> DenseStats {
        let inner = self.inner.read().expect("dense lock");
        DenseStats {
            dict_size: inner.dict.len(),
            dict_hits: self.dict_hits.load(AtomicOrdering::Relaxed),
            dict_misses: self.dict_misses.load(AtomicOrdering::Relaxed),
            remaps: self.remaps.load(AtomicOrdering::Relaxed),
            tries: inner.tries.len(),
        }
    }

    /// A consistent snapshot serving one query: the dictionary plus, per
    /// request `(predicate, arity, column order)`, the dense trie —
    /// `None` when the relation is empty (provably no matching rows).
    /// Builds or delta-extends whatever is stale first; when everything
    /// is current this is one read-lock hold and `Arc` clones.
    ///
    /// All returned parts come from **one** lock hold, so they are
    /// mutually consistent even if the store moves to a new epoch (a
    /// remap copy-on-writes the stored tries; this snapshot keeps the
    /// old ones).
    pub fn snapshot(
        &self,
        columns: &HashMap<(Predicate, u16), PredColumns>,
        reqs: &[(Predicate, u16, &[u16])],
    ) -> (Arc<Dict>, Vec<Option<Arc<DenseTrie>>>) {
        // Fast path: everything current under the read lock.
        {
            let inner = self.inner.read().expect("dense lock");
            let mut out: Vec<Option<Arc<DenseTrie>>> = Vec::with_capacity(reqs.len());
            let mut fresh = true;
            for &(p, arity, order) in reqs {
                let rows = columns.get(&(p, arity)).map_or(0, |c| c.rows());
                if rows == 0 {
                    out.push(None);
                    continue;
                }
                match inner.canon.get(&(p, arity, order.to_vec())) {
                    Some(t) if t.rows == rows => out.push(Some(Arc::clone(t))),
                    _ => {
                        fresh = false;
                        break;
                    }
                }
            }
            if fresh {
                return (Arc::clone(&inner.dict), out);
            }
        }
        let mut inner = self.inner.write().expect("dense lock");
        for &(p, arity, order) in reqs {
            if let Some(pc) = columns.get(&(p, arity)) {
                if pc.rows() > 0 {
                    self.ensure_table(&mut inner, p, arity, pc);
                    Self::ensure_trie(&mut inner, p, arity, order);
                }
            }
        }
        let out = reqs
            .iter()
            .map(|&(p, arity, order)| {
                let rows = columns.get(&(p, arity)).map_or(0, |c| c.rows());
                (rows > 0).then(|| {
                    Arc::clone(
                        inner
                            .canon
                            .get(&(p, arity, order.to_vec()))
                            .expect("trie ensured above"),
                    )
                })
            })
            .collect();
        (Arc::clone(&inner.dict), out)
    }

    /// Brings the encoded table of `(p, arity)` up to date with the
    /// arena: extends the dictionary by the delta's fresh values (append
    /// when they all sort last, one monotone remap otherwise) and encodes
    /// the delta rows.
    fn ensure_table(&self, inner: &mut Inner, p: Predicate, arity: u16, pc: &PredColumns) {
        let done = inner
            .tables
            .get(&(p, arity))
            .map_or(0, |t: &EncodedTable| t.rows);
        let rows = pc.rows();
        if done >= rows {
            return;
        }
        // Pass 1: collect the delta's values missing from the dictionary.
        let (mut hits, mut misses) = (0usize, 0usize);
        let mut fresh: BTreeSet<Value> = BTreeSet::new();
        for j in 0..arity as usize {
            for &v in &pc.col(j)[done..rows] {
                if inner.dict.code_of.contains_key(&v) {
                    hits += 1;
                } else if fresh.insert(v) {
                    misses += 1;
                } else {
                    hits += 1;
                }
            }
        }
        self.dict_hits.fetch_add(hits, AtomicOrdering::Relaxed);
        self.dict_misses.fetch_add(misses, AtomicOrdering::Relaxed);
        obs::count(obs::Metric::DenseDictHits, hits as u64);
        obs::count(obs::Metric::DenseDictMisses, misses as u64);
        if !fresh.is_empty() {
            self.extend_dict(inner, fresh);
        }
        // Pass 2: encode the delta.
        let dict = Arc::clone(&inner.dict);
        let table = inner.tables.entry((p, arity)).or_default();
        if table.cols.len() != arity as usize {
            table.cols = vec![Vec::new(); arity as usize];
        }
        for (j, col) in table.cols.iter_mut().enumerate() {
            col.reserve(rows - done);
            for &v in &pc.col(j)[done..rows] {
                col.push(dict.code_of[&v]);
            }
        }
        table.rows = rows;
    }

    /// Extends the dictionary by `fresh` (nonempty, sorted, disjoint from
    /// the current contents). Append path: all fresh values sort after
    /// the current maximum — codes are minted past the end and nothing
    /// else moves. Merge path: codes shift monotonically; every encoded
    /// cell of every table and trie is rewritten in one pass
    /// (copy-on-write for tries already snapshotted by readers).
    fn extend_dict(&self, inner: &mut Inner, fresh: BTreeSet<Value>) {
        let append = match (inner.dict.sorted.last(), fresh.first()) {
            (Some(&max), Some(&min)) => max < min,
            _ => true,
        };
        let dict = Arc::make_mut(&mut inner.dict);
        if append {
            for v in fresh {
                let code = dict.sorted.len() as u32;
                dict.sorted.push(v);
                dict.code_of.insert(v, code);
            }
            return;
        }
        self.remaps.fetch_add(1, AtomicOrdering::Relaxed);
        obs::count(obs::Metric::DenseRemaps, 1);
        // Two-pointer merge of the (sorted, disjoint) sequences, recording
        // where every old code lands.
        let old = std::mem::take(&mut dict.sorted);
        let mut old_to_new: Vec<u32> = Vec::with_capacity(old.len());
        let mut merged: Vec<Value> = Vec::with_capacity(old.len() + fresh.len());
        let mut fresh = fresh.into_iter().peekable();
        for v in old {
            while let Some(&f) = fresh.peek() {
                if f < v {
                    merged.push(f);
                    fresh.next();
                } else {
                    break;
                }
            }
            old_to_new.push(merged.len() as u32);
            merged.push(v);
        }
        merged.extend(fresh);
        dict.code_of = merged
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        dict.sorted = merged;
        for table in inner.tables.values_mut() {
            for col in &mut table.cols {
                for c in col.iter_mut() {
                    *c = old_to_new[*c as usize];
                }
            }
        }
        for trie in inner.tries.values_mut() {
            // The remap is monotone, so the sort order, the permutation,
            // and the CSR grouping all survive; only stored keys shift.
            let trie = Arc::make_mut(trie);
            for level in &mut trie.levels {
                for c in level.iter_mut() {
                    *c = old_to_new[*c as usize];
                }
            }
            for level in &mut trie.entries {
                for c in level.iter_mut() {
                    *c = old_to_new[*c as usize];
                }
            }
        }
        // `Arc::make_mut` above may have diverged from the `Arc`s aliased
        // in `canon`; re-point every key at its own (freshly remapped)
        // trie. Aliases re-form the next time a sibling is (re)built —
        // remaps only happen while loading named constants, before any
        // query has materialized tries, so this rarely drops sharing.
        inner.canon = inner
            .tries
            .iter()
            .map(|(k, t)| (k.clone(), Arc::clone(t)))
            .collect();
    }

    /// Builds or delta-extends the dense trie of `(p, arity, order)` from
    /// the (already current) encoded table. Extension sorts only the new
    /// row ids and merges — `O(d log d + n)` — mirroring the
    /// sorted-permutation cache's incremental contract.
    fn ensure_trie(inner: &mut Inner, p: Predicate, arity: u16, order: &[u16]) {
        let table = &inner.tables[&(p, arity)];
        let rows = table.rows;
        let key = (p, arity, order.to_vec());
        let prev = inner.tries.get(&key);
        if prev.is_some_and(|t| t.rows == rows) {
            return;
        }
        let cmp = |a: u32, b: u32| -> Ordering {
            for &j in order {
                let col = &table.cols[j as usize];
                match col[a as usize].cmp(&col[b as usize]) {
                    Ordering::Equal => {}
                    other => return other,
                }
            }
            a.cmp(&b)
        };
        let perm: Vec<u32> = match prev {
            Some(t) => {
                let mut delta: Vec<u32> = (t.rows as u32..rows as u32).collect();
                delta.sort_unstable_by(|&a, &b| cmp(a, b));
                let old = &t.perm;
                let mut out: Vec<u32> = Vec::with_capacity(rows);
                let (mut i, mut j) = (0usize, 0usize);
                while i < old.len() && j < delta.len() {
                    if cmp(old[i], delta[j]) != Ordering::Greater {
                        out.push(old[i]);
                        i += 1;
                    } else {
                        out.push(delta[j]);
                        j += 1;
                    }
                }
                out.extend_from_slice(&old[i..]);
                out.extend_from_slice(&delta[j..]);
                out
            }
            None => {
                let mut all: Vec<u32> = (0..rows as u32).collect();
                all.sort_unstable_by(|&a, &b| cmp(a, b));
                all
            }
        };
        let levels: Vec<Vec<u32>> = order
            .iter()
            .map(|&j| {
                let col = &table.cols[j as usize];
                perm.iter().map(|&r| col[r as usize]).collect()
            })
            .collect();
        let (entries, child) = DenseTrie::build_csr(&levels, rows);
        let arc = Arc::new(DenseTrie {
            perm,
            levels,
            rows,
            entries,
            child,
        });
        // Content dedup: when a sibling column order of the same predicate
        // holds the *identical* sorted key sequence (symmetric relations —
        // a graph's `E` stored both ways), snapshots hand out the sibling's
        // `Arc` so the executor can drop duplicate leapfrog participants by
        // pointer identity. `perm` may differ across the alias, so `tries`
        // still keeps the key's own trie for delta extension.
        let shared = inner
            .tries
            .iter()
            .find(|(k2, t2)| {
                k2.0 == p
                    && k2.1 == arity
                    && k2.2 != key.2
                    && t2.rows == rows
                    && t2.levels == arc.levels
            })
            .map(|(k2, _)| Arc::clone(&inner.canon[k2]));
        inner
            .canon
            .insert(key.clone(), shared.unwrap_or_else(|| Arc::clone(&arc)));
        inner.tries.insert(key, arc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::named(s)
    }

    fn arena(rows: &[&[&str]]) -> HashMap<(Predicate, u16), PredColumns> {
        let mut pc = PredColumns::default();
        for r in rows {
            let args: Vec<Value> = r.iter().map(|s| v(s)).collect();
            pc.push(&args);
        }
        let arity = rows.first().map_or(0, |r| r.len()) as u16;
        [((Predicate::new("R"), arity), pc)].into_iter().collect()
    }

    fn decoded_rows(dict: &Dict, trie: &DenseTrie) -> Vec<Vec<Value>> {
        (0..trie.rows())
            .map(|i| {
                (0..trie.levels.len())
                    .map(|l| dict.decode(trie.level(l)[i]))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn codes_are_order_preserving_and_rows_sorted() {
        let cols = arena(&[&["b", "x"], &["a", "z"], &["a", "y"], &["c", "w"]]);
        let store = DenseStore::default();
        let p = Predicate::new("R");
        let (dict, tries) = store.snapshot(&cols, &[(p, 2, &[0, 1])]);
        let trie = tries[0].as_ref().unwrap();
        assert_eq!(trie.rows(), 4);
        for w in dict.values().windows(2) {
            assert!(w[0] < w[1]);
        }
        for (i, &val) in dict.values().iter().enumerate() {
            assert_eq!(dict.code(val), Some(i as u32));
            assert_eq!(dict.decode(i as u32), val);
        }
        let rows = decoded_rows(&dict, trie);
        let mut expect = rows.clone();
        expect.sort();
        assert_eq!(rows, expect);
    }

    #[test]
    fn append_only_growth_never_remaps() {
        let mut cols = arena(&[&["a"], &["b"]]);
        let store = DenseStore::default();
        let p = Predicate::new("R");
        let key = (p, 1u16);
        store.snapshot(&cols, &[(p, 1, &[0])]);
        assert_eq!(store.stats().remaps, 0);
        // Nulls sort after every named constant and their labels are
        // globally monotone: repeated inserts stay on the append path.
        for _ in 0..4 {
            let n = Value::fresh_null();
            cols.get_mut(&key).unwrap().push(&[n]);
            store.snapshot(&cols, &[(p, 1, &[0])]);
        }
        let s = store.stats();
        assert_eq!(s.remaps, 0);
        assert_eq!(s.dict_size, 6);
    }

    #[test]
    fn remap_shifts_codes_and_keeps_snapshots_consistent() {
        let mut cols = arena(&[&["m", "m"], &["x", "m"]]);
        let store = DenseStore::default();
        let p = Predicate::new("R");
        let (dict1, tries1) = store.snapshot(&cols, &[(p, 2, &[0, 1])]);
        let rows1 = decoded_rows(&dict1, tries1[0].as_ref().unwrap());
        // A value sorting into the middle (or front) forces one remap.
        let small = *dict1.values().first().unwrap();
        let tiny = if v("a") < small { v("a") } else { v("zzz") };
        let forces_remap = tiny < *dict1.values().last().unwrap();
        cols.get_mut(&(p, 2)).unwrap().push(&[tiny, tiny]);
        let (dict2, tries2) = store.snapshot(&cols, &[(p, 2, &[0, 1])]);
        assert_eq!(store.stats().remaps, usize::from(forces_remap));
        // The old snapshot still decodes to the same rows.
        assert_eq!(rows1, decoded_rows(&dict1, tries1[0].as_ref().unwrap()));
        // The new snapshot is sorted and complete.
        let rows2 = decoded_rows(&dict2, tries2[0].as_ref().unwrap());
        let mut expect = rows2.clone();
        expect.sort();
        assert_eq!(rows2, expect);
        assert_eq!(rows2.len(), 3);
        for w in dict2.values().windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn empty_relation_yields_no_trie() {
        let store = DenseStore::default();
        let cols = HashMap::new();
        let (dict, tries) = store.snapshot(&cols, &[(Predicate::new("Z"), 2, &[0, 1])]);
        assert!(tries[0].is_none());
        assert!(dict.is_empty());
        assert_eq!(store.stats().tries, 0);
    }

    #[test]
    fn delta_extension_matches_full_rebuild() {
        let mut cols = arena(&[&["d", "q"], &["b", "r"]]);
        let store = DenseStore::default();
        let p = Predicate::new("R");
        store.snapshot(&cols, &[(p, 2, &[1, 0])]);
        cols.get_mut(&(p, 2)).unwrap().push(&[v("c"), v("p")]);
        cols.get_mut(&(p, 2)).unwrap().push(&[v("a"), v("s")]);
        let (dict, tries) = store.snapshot(&cols, &[(p, 2, &[1, 0])]);
        let trie = tries[0].as_ref().unwrap();
        let fresh = DenseStore::default();
        let (fdict, ftries) = fresh.snapshot(&cols, &[(p, 2, &[1, 0])]);
        assert_eq!(
            decoded_rows(&dict, trie),
            decoded_rows(&fdict, ftries[0].as_ref().unwrap())
        );
        assert_eq!(trie.perm(), ftries[0].as_ref().unwrap().perm());
    }

    #[test]
    fn symmetric_orders_share_one_trie() {
        let mut pc = PredColumns::default();
        for (a, b) in [("a", "b"), ("b", "a"), ("a", "c"), ("c", "a")] {
            pc.push(&[v(a), v(b)]);
        }
        let p = Predicate::new("E");
        let cols: HashMap<_, _> = [((p, 2u16), pc)].into_iter().collect();
        let store = DenseStore::default();
        let (_, tries) = store.snapshot(&cols, &[(p, 2, &[0, 1]), (p, 2, &[1, 0])]);
        let t01 = tries[0].as_ref().unwrap();
        let t10 = tries[1].as_ref().unwrap();
        assert!(
            Arc::ptr_eq(t01, t10),
            "identical-content tries of sibling column orders must alias"
        );
        // The alias serves snapshots only: each key keeps its own trie
        // (with its own permutation) for delta extension.
        assert_eq!(store.stats().tries, 2);
    }

    #[test]
    fn asymmetric_orders_stay_distinct() {
        let mut pc = PredColumns::default();
        pc.push(&[v("a"), v("b")]);
        pc.push(&[v("a"), v("c")]);
        let p = Predicate::new("R");
        let cols: HashMap<_, _> = [((p, 2u16), pc)].into_iter().collect();
        let store = DenseStore::default();
        let (_, tries) = store.snapshot(&cols, &[(p, 2, &[0, 1]), (p, 2, &[1, 0])]);
        assert!(!Arc::ptr_eq(
            tries[0].as_ref().unwrap(),
            tries[1].as_ref().unwrap()
        ));
    }

    #[test]
    fn remap_keeps_aliased_snapshots_decoding_consistently() {
        let mut pc = PredColumns::default();
        for (a, b) in [("m", "x"), ("x", "m")] {
            pc.push(&[v(a), v(b)]);
        }
        let p = Predicate::new("E");
        let mut cols: HashMap<_, _> = [((p, 2u16), pc)].into_iter().collect();
        let store = DenseStore::default();
        let (dict1, tries1) = store.snapshot(&cols, &[(p, 2, &[0, 1]), (p, 2, &[1, 0])]);
        assert!(Arc::ptr_eq(
            tries1[0].as_ref().unwrap(),
            tries1[1].as_ref().unwrap()
        ));
        let rows_before = decoded_rows(&dict1, tries1[0].as_ref().unwrap());
        // Force a remap (a value sorting before the existing minimum),
        // keeping the relation symmetric.
        cols.get_mut(&(p, 2)).unwrap().push(&[v("a"), v("a")]);
        let (dict2, tries2) = store.snapshot(&cols, &[(p, 2, &[0, 1]), (p, 2, &[1, 0])]);
        assert_eq!(store.stats().remaps, 1);
        // Old aliased snapshot still decodes with its own dictionary.
        assert_eq!(
            rows_before,
            decoded_rows(&dict1, tries1[0].as_ref().unwrap())
        );
        // New snapshot: both orders complete, sorted, and mutually equal.
        let r01 = decoded_rows(&dict2, tries2[0].as_ref().unwrap());
        let r10 = decoded_rows(&dict2, tries2[1].as_ref().unwrap());
        assert_eq!(r01.len(), 3);
        assert_eq!(r01, r10);
        let mut expect = r01.clone();
        expect.sort();
        assert_eq!(r01, expect);
    }

    #[test]
    fn extension_after_aliasing_rebuilds_correct_tries() {
        let mut pc = PredColumns::default();
        for (a, b) in [("a", "b"), ("b", "a")] {
            pc.push(&[v(a), v(b)]);
        }
        let p = Predicate::new("E");
        let mut cols: HashMap<_, _> = [((p, 2u16), pc)].into_iter().collect();
        let store = DenseStore::default();
        store.snapshot(&cols, &[(p, 2, &[0, 1]), (p, 2, &[1, 0])]);
        // Grow asymmetrically: the alias must dissolve and both orders
        // must match a from-scratch build.
        cols.get_mut(&(p, 2)).unwrap().push(&[v("b"), v("c")]);
        let (dict, tries) = store.snapshot(&cols, &[(p, 2, &[0, 1]), (p, 2, &[1, 0])]);
        assert!(!Arc::ptr_eq(
            tries[0].as_ref().unwrap(),
            tries[1].as_ref().unwrap()
        ));
        let fresh = DenseStore::default();
        let (fdict, ftries) = fresh.snapshot(&cols, &[(p, 2, &[0, 1]), (p, 2, &[1, 0])]);
        for i in 0..2 {
            assert_eq!(
                decoded_rows(&dict, tries[i].as_ref().unwrap()),
                decoded_rows(&fdict, ftries[i].as_ref().unwrap())
            );
        }
    }

    #[test]
    fn invalidated_relation_rebuilds_from_shrunk_arena() {
        let mut cols = arena(&[&["b", "x"], &["a", "z"], &["c", "y"]]);
        let store = DenseStore::default();
        let p = Predicate::new("R");
        let (dict1, _) = store.snapshot(&cols, &[(p, 2, &[0, 1])]);
        // Shrink the arena (drop the middle row) and invalidate.
        let mut shrunk = PredColumns::default();
        for (a, b) in [("b", "x"), ("c", "y")] {
            shrunk.push(&[v(a), v(b)]);
        }
        cols.insert((p, 2), shrunk);
        let touched = [(p, 2u16)].into_iter().collect();
        store.invalidate_relations(&touched);
        assert_eq!(store.stats().tries, 0);
        let (dict2, tries) = store.snapshot(&cols, &[(p, 2, &[0, 1])]);
        let trie = tries[0].as_ref().unwrap();
        assert_eq!(trie.rows(), 2);
        // The dictionary survived: codes of surviving values are stable
        // and the stale "a"/"z" entries are harmless.
        assert_eq!(dict1.code(v("b")), dict2.code(v("b")));
        assert!(dict2.code(v("a")).is_some());
        assert_eq!(store.stats().remaps, 0);
        let decoded = decoded_rows(&dict2, trie);
        assert_eq!(decoded, vec![vec![v("b"), v("x")], vec![v("c"), v("y")]]);
    }

    #[test]
    fn invalidation_spares_untouched_relations() {
        let p = Predicate::new("R");
        let q = Predicate::new("S");
        let mut pr = PredColumns::default();
        pr.push(&[v("a")]);
        let mut qs = PredColumns::default();
        qs.push(&[v("b")]);
        let cols: HashMap<_, _> = [((p, 1u16), pr), ((q, 1u16), qs)].into_iter().collect();
        let store = DenseStore::default();
        let (_, before) = store.snapshot(&cols, &[(p, 1, &[0]), (q, 1, &[0])]);
        store.invalidate_relations(&[(p, 1u16)].into_iter().collect());
        assert_eq!(store.stats().tries, 1);
        let (_, after) = store.snapshot(&cols, &[(p, 1, &[0]), (q, 1, &[0])]);
        assert!(Arc::ptr_eq(
            before[1].as_ref().unwrap(),
            after[1].as_ref().unwrap()
        ));
        assert!(!Arc::ptr_eq(
            before[0].as_ref().unwrap(),
            after[0].as_ref().unwrap()
        ));
    }

    #[test]
    fn export_install_round_trips_without_new_dict_work() {
        let cols = arena(&[&["b", "x"], &["a", "z"], &["a", "y"], &["c", "w"]]);
        let store = DenseStore::default();
        let p = Predicate::new("R");
        let (dict, tries) = store.snapshot(&cols, &[(p, 2, &[0, 1]), (p, 2, &[1, 0])]);
        let export = store.export_state();

        let fresh = DenseStore::default();
        let (tables_in, tries_in) = fresh.install_state(&export, &cols);
        assert_eq!((tables_in, tries_in), (1, 2));
        // The installed store serves the same snapshot as the saved one —
        // same decoded rows, same permutations — and does so without a
        // single new dictionary lookup (everything is already warm).
        let before = fresh.stats();
        let (fdict, ftries) = fresh.snapshot(&cols, &[(p, 2, &[0, 1]), (p, 2, &[1, 0])]);
        let after = fresh.stats();
        assert_eq!(fdict.values(), dict.values());
        for i in 0..2 {
            assert_eq!(
                decoded_rows(&fdict, ftries[i].as_ref().unwrap()),
                decoded_rows(&dict, tries[i].as_ref().unwrap())
            );
            assert_eq!(
                ftries[i].as_ref().unwrap().perm(),
                tries[i].as_ref().unwrap().perm()
            );
        }
        assert_eq!(after.dict_hits, before.dict_hits);
        assert_eq!(after.dict_misses, before.dict_misses);
        assert_eq!(after, store.stats());
    }

    #[test]
    fn install_rejects_corrupt_sections() {
        let cols = arena(&[&["b"], &["a"], &["c"]]);
        let store = DenseStore::default();
        let p = Predicate::new("R");
        store.snapshot(&cols, &[(p, 1, &[0])]);
        let good = store.export_state();

        // An unsorted dictionary poisons the whole import.
        let mut bad_dict = good.clone();
        bad_dict.dict.reverse();
        assert_eq!(
            DenseStore::default().install_state(&bad_dict, &cols),
            (0, 0)
        );

        // A cell that decodes to the wrong value drops the table and its
        // dependent trie, but the valid dictionary still installs.
        let mut bad_cell = good.clone();
        bad_cell.tables[0].cols[0][0] ^= 1;
        let s = DenseStore::default();
        assert_eq!(s.install_state(&bad_cell, &cols), (0, 0));

        // An unsorted permutation drops only the trie.
        let mut bad_perm = good.clone();
        bad_perm.tries[0].perm.reverse();
        assert_eq!(
            DenseStore::default().install_state(&bad_perm, &cols),
            (1, 0)
        );
    }

    #[test]
    fn hit_miss_accounting() {
        let cols = arena(&[&["a", "b"], &["a", "b"], &["c", "b"]]);
        let store = DenseStore::default();
        let p = Predicate::new("R");
        store.snapshot(&cols, &[(p, 2, &[0, 1])]);
        let s = store.stats();
        // 6 cells, 3 distinct values: 3 misses, 3 repeat hits.
        assert_eq!(s.dict_misses, 3);
        assert_eq!(s.dict_hits, 3);
        assert_eq!(s.dict_size, 3);
    }
}
