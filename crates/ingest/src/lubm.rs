//! A deterministic LUBM-style workload generator: the classic
//! university-domain benchmark shape (universities → departments →
//! faculty/courses/students/publications) scaled by a single `--univ`
//! knob, from ~10³ atoms at `univ = 1` to beyond 10⁶ at `univ ≈ 800`.
//!
//! Everything is driven by one seeded [`Rng`] walked in a fixed traversal
//! order, so the same `(universities, seed)` pair produces a
//! **byte-identical** program however it is rendered — as N-Triples
//! ([`LubmSource::ntriples`]), as datalog fact text
//! ([`LubmSource::datalog_facts`]), or streamed directly through the
//! [`Source`] API. All three renderings share one emit path; the
//! differential test suite leans on that to check the RDF parser against
//! the direct path atom-for-atom.
//!
//! The companion TBox [`ONTOLOGY_OWL`] stays inside the ELHI⊥ overlap the
//! OWL frontend accepts, and is written so lowering introduces no
//! auxiliary concept names — each axiom becomes exactly the guarded TGD
//! you would write by hand, which keeps the differential datalog mirror
//! honest.

use crate::error::IngestError;
use crate::owl::OwlSource;
use crate::source::{FactSink, Source, SourceSchema};
use gtgd_data::rng::Rng;
use gtgd_data::{GroundAtom, Predicate, Value};

/// The LUBM namespace (entity and vocabulary IRIs live here).
pub const LUBM_NS: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";

/// The university-domain TBox, in OWL functional syntax. Within the
/// supported fragment by construction; `gtgd gen lubm` writes it next to
/// the data so the pair round-trips through `gtgd ingest`.
pub const ONTOLOGY_OWL: &str = r#"Prefix(ub:=<http://swat.cse.lehigh.edu/onto/univ-bench.owl#>)
Ontology(<http://swat.cse.lehigh.edu/onto/univ-bench.owl>
  Declaration(Class(ub:University))
  Declaration(Class(ub:Department))
  Declaration(Class(ub:Professor))
  Declaration(Class(ub:Faculty))
  Declaration(Class(ub:Employee))
  Declaration(Class(ub:Person))
  Declaration(Class(ub:Student))
  Declaration(Class(ub:Course))
  Declaration(Class(ub:Publication))
  Declaration(ObjectProperty(ub:subOrganizationOf))
  Declaration(ObjectProperty(ub:worksFor))
  Declaration(ObjectProperty(ub:headOf))
  Declaration(ObjectProperty(ub:memberOf))
  Declaration(ObjectProperty(ub:teacherOf))
  Declaration(ObjectProperty(ub:takesCourse))
  Declaration(ObjectProperty(ub:advisor))
  Declaration(ObjectProperty(ub:publicationAuthor))
  SubClassOf(ub:Professor ub:Faculty)
  SubClassOf(ub:Faculty ub:Employee)
  SubClassOf(ub:Employee ub:Person)
  SubClassOf(ub:Student ub:Person)
  SubClassOf(ub:Faculty ObjectSomeValuesFrom(ub:worksFor ub:Department))
  SubClassOf(ub:Student ObjectSomeValuesFrom(ub:memberOf ub:Department))
  SubClassOf(ub:Department ObjectSomeValuesFrom(ub:subOrganizationOf ub:University))
  SubObjectPropertyOf(ub:headOf ub:worksFor)
  ObjectPropertyDomain(ub:teacherOf ub:Faculty)
  ObjectPropertyRange(ub:teacherOf ub:Course)
  ObjectPropertyDomain(ub:takesCourse ub:Student)
  ObjectPropertyRange(ub:takesCourse ub:Course)
  ObjectPropertyDomain(ub:advisor ub:Student)
  ObjectPropertyRange(ub:advisor ub:Professor)
  ObjectPropertyDomain(ub:publicationAuthor ub:Publication)
  ObjectPropertyRange(ub:publicationAuthor ub:Person)
  ObjectPropertyDomain(ub:worksFor ub:Employee)
  ObjectPropertyRange(ub:worksFor ub:Department)
  ObjectPropertyDomain(ub:memberOf ub:Person)
  ObjectPropertyRange(ub:memberOf ub:Department)
)
"#;

/// The same TBox as hand-written guarded TGDs — the datalog mirror the
/// differential suite compares the OWL lowering against. Kept adjacent
/// to [`ONTOLOGY_OWL`] so the two are reviewed together.
pub const ONTOLOGY_TGDS: &str = "\
Professor(X) -> Faculty(X). Faculty(X) -> Employee(X). Employee(X) -> Person(X).
Student(X) -> Person(X).
Faculty(X) -> worksFor(X,D), Department(D).
Student(X) -> memberOf(X,D), Department(D).
Department(X) -> subOrganizationOf(X,U), University(U).
headOf(X,Y) -> worksFor(X,Y).
teacherOf(X,Y) -> Faculty(X). teacherOf(X,Y) -> Course(Y).
takesCourse(X,Y) -> Student(X). takesCourse(X,Y) -> Course(Y).
advisor(X,Y) -> Student(X). advisor(X,Y) -> Professor(Y).
publicationAuthor(X,Y) -> Publication(X). publicationAuthor(X,Y) -> Person(Y).
worksFor(X,Y) -> Employee(X). worksFor(X,Y) -> Department(Y).
memberOf(X,Y) -> Person(X). memberOf(X,Y) -> Department(Y).
";

/// Generator knobs.
#[derive(Debug, Clone, Copy)]
pub struct LubmConfig {
    /// Number of universities (the scale knob; ~1.3k atoms each).
    pub universities: usize,
    /// RNG seed. Same `(universities, seed)` ⇒ byte-identical output.
    pub seed: u64,
}

impl Default for LubmConfig {
    fn default() -> LubmConfig {
        LubmConfig {
            universities: 1,
            seed: 0x10b3,
        }
    }
}

/// One generated fact, before rendering.
enum Fact<'a> {
    Class(&'static str, &'a str),
    Prop(&'static str, &'a str, &'a str),
}

/// The LUBM-style generator as an ingestion source.
pub struct LubmSource {
    cfg: LubmConfig,
}

impl LubmSource {
    /// A generator for `cfg`.
    pub fn new(cfg: LubmConfig) -> LubmSource {
        LubmSource { cfg }
    }

    /// The single emit path behind every rendering: walks the seeded RNG
    /// in a fixed order and hands each fact to `out`.
    fn emit<E>(&self, out: &mut dyn FnMut(Fact<'_>) -> Result<(), E>) -> Result<(), E> {
        let mut rng = Rng::seed(self.cfg.seed);
        for u in 0..self.cfg.universities {
            let uni = format!("u{u}");
            out(Fact::Class("University", &uni))?;
            let depts = 4 + rng.below(2) as usize;
            for d in 0..depts {
                let dept = format!("{uni}_d{d}");
                out(Fact::Class("Department", &dept))?;
                out(Fact::Prop("subOrganizationOf", &dept, &uni))?;

                let n_profs = 8 + rng.below(5) as usize;
                let profs: Vec<String> =
                    (0..n_profs).map(|p| format!("{dept}_p{p}")).collect();
                for (p, prof) in profs.iter().enumerate() {
                    out(Fact::Class("Professor", prof))?;
                    if p == 0 {
                        out(Fact::Prop("headOf", prof, &dept))?;
                    } else {
                        out(Fact::Prop("worksFor", prof, &dept))?;
                    }
                }

                let n_courses = 15 + rng.below(10) as usize;
                let courses: Vec<String> =
                    (0..n_courses).map(|c| format!("{dept}_c{c}")).collect();
                for course in &courses {
                    out(Fact::Class("Course", course))?;
                    let teacher = &profs[rng.below(n_profs as u64) as usize];
                    out(Fact::Prop("teacherOf", teacher, course))?;
                }

                for prof in &profs {
                    let n_pubs = 2 + rng.below(3) as usize;
                    for k in 0..n_pubs {
                        let publ = format!("{prof}_pub{k}");
                        out(Fact::Class("Publication", &publ))?;
                        out(Fact::Prop("publicationAuthor", &publ, prof))?;
                    }
                }

                let n_students = 30 + rng.below(20) as usize;
                for s in 0..n_students {
                    let student = format!("{dept}_s{s}");
                    out(Fact::Class("Student", &student))?;
                    out(Fact::Prop("memberOf", &student, &dept))?;
                    for _ in 0..2 {
                        let course = &courses[rng.below(n_courses as u64) as usize];
                        out(Fact::Prop("takesCourse", &student, course))?;
                    }
                    if rng.chance(0.3) {
                        let adv = &profs[rng.below(n_profs as u64) as usize];
                        out(Fact::Prop("advisor", &student, adv))?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Renders the data as N-Triples (full IRIs in [`LUBM_NS`]).
    pub fn ntriples(&self) -> String {
        let mut out = String::new();
        let infallible: Result<(), std::convert::Infallible> = self.emit(&mut |f| {
            match f {
                Fact::Class(c, e) => {
                    out.push_str(&format!(
                        "<{LUBM_NS}{e}> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <{LUBM_NS}{c}> .\n"
                    ));
                }
                Fact::Prop(p, s, o) => {
                    out.push_str(&format!("<{LUBM_NS}{s}> <{LUBM_NS}{p}> <{LUBM_NS}{o}> .\n"));
                }
            }
            Ok(())
        });
        infallible.expect("string rendering cannot fail");
        out
    }

    /// Renders the data as datalog fact text (`parse_facts` format).
    pub fn datalog_facts(&self) -> String {
        let mut out = String::new();
        let infallible: Result<(), std::convert::Infallible> = self.emit(&mut |f| {
            match f {
                Fact::Class(c, e) => out.push_str(&format!("{c}({e}).\n")),
                Fact::Prop(p, s, o) => out.push_str(&format!("{p}({s},{o}).\n")),
            }
            Ok(())
        });
        infallible.expect("string rendering cannot fail");
        out
    }

    /// Counts the atoms this configuration generates (duplicates from
    /// repeated random draws included, as in every rendering).
    pub fn atom_count(&self) -> usize {
        let mut n = 0usize;
        let infallible: Result<(), std::convert::Infallible> = self.emit(&mut |_| {
            n += 1;
            Ok(())
        });
        infallible.expect("counting cannot fail");
        n
    }
}

impl Source for LubmSource {
    fn name(&self) -> &str {
        "lubm"
    }

    fn schema(&mut self) -> Result<SourceSchema, IngestError> {
        // Dogfood the OWL frontend: the generator's schema IS its
        // ontology, lowered exactly the way a user's ontology would be.
        OwlSource::from_str("lubm-ontology", ONTOLOGY_OWL).schema()
    }

    fn facts(&mut self, sink: &mut dyn FactSink) -> Result<(), IngestError> {
        self.emit(&mut |f| {
            let atom = match f {
                Fact::Class(c, e) => GroundAtom {
                    predicate: Predicate::new(c),
                    args: vec![Value::named(e)],
                },
                Fact::Prop(p, s, o) => GroundAtom {
                    predicate: Predicate::new(p),
                    args: vec![Value::named(s), Value::named(o)],
                },
            };
            sink.push(atom)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ingest;

    #[test]
    fn same_seed_is_byte_identical() {
        let cfg = LubmConfig {
            universities: 2,
            seed: 42,
        };
        let a = LubmSource::new(cfg).ntriples();
        let b = LubmSource::new(cfg).ntriples();
        assert_eq!(a, b);
        let other = LubmSource::new(LubmConfig {
            universities: 2,
            seed: 43,
        })
        .ntriples();
        assert_ne!(a, other);
    }

    #[test]
    fn scale_tracks_universities() {
        let at = |universities| {
            LubmSource::new(LubmConfig {
                universities,
                seed: 7,
            })
            .atom_count()
        };
        let one = at(1);
        assert!(one >= 1000, "one university is ~1.3k atoms, got {one}");
        let ten = at(10);
        assert!(ten > 8 * one && ten < 12 * one, "{one} vs {ten}");
    }

    #[test]
    fn ontology_is_in_fragment_and_program_chases() {
        let mut src = LubmSource::new(LubmConfig {
            universities: 1,
            seed: 1,
        });
        let p = ingest(&mut src).unwrap();
        assert!(p.tgds.len() >= 20, "{}", p.tgds.len());
        assert!(p.facts.len() >= 900);
        let out = p.chase(gtgd_chase::ChaseBudget::unbounded());
        assert!(out.complete);
        // Saturation derives Person for every professor and student.
        let persons = out
            .instance
            .iter()
            .filter(|a| a.predicate == Predicate::new("Person"))
            .count();
        assert!(persons > 100, "{persons}");
    }

    #[test]
    fn renderings_agree_with_the_source_path() {
        let cfg = LubmConfig {
            universities: 1,
            seed: 99,
        };
        let direct = ingest(&mut LubmSource::new(cfg)).unwrap();
        let text = LubmSource::new(cfg).datalog_facts();
        let parsed = gtgd_data::text::parse_facts(&text).unwrap();
        assert_eq!(direct.facts, parsed);
    }
}
