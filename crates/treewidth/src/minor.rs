//! Minor maps (Section 6 / Appendix H): branch-set representations of graph
//! minors, validation, onto-extension, and a search procedure for small
//! hosts.
//!
//! A minor map from `H` to `G` assigns each vertex of `H` a nonempty,
//! connected, pairwise-disjoint *branch set* of `G`-vertices such that every
//! `H`-edge is realized by some cross edge between the corresponding branch
//! sets. It is *onto* if the branch sets cover all of `G`.

use crate::graph::Graph;
use std::collections::BTreeSet;

/// A minor map: `branch_sets[h]` is `µ(h)` for minor vertex `h`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinorMap {
    branch_sets: Vec<BTreeSet<usize>>,
}

/// Why a candidate minor map is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidMinorMap {
    /// Wrong number of branch sets for the minor.
    WrongArity,
    /// `µ(h)` is empty.
    EmptyBranchSet(usize),
    /// `µ(h)` is not connected in the host.
    DisconnectedBranchSet(usize),
    /// Two branch sets overlap.
    Overlap(usize, usize),
    /// A minor edge `{a, b}` has no realizing host edge.
    EdgeNotRealized(usize, usize),
    /// A branch set mentions a host vertex that does not exist.
    UnknownVertex(usize),
}

impl std::fmt::Display for InvalidMinorMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvalidMinorMap::WrongArity => write!(f, "wrong number of branch sets"),
            InvalidMinorMap::EmptyBranchSet(h) => write!(f, "branch set of {h} is empty"),
            InvalidMinorMap::DisconnectedBranchSet(h) => {
                write!(f, "branch set of {h} is disconnected")
            }
            InvalidMinorMap::Overlap(a, b) => {
                write!(f, "branch sets of {a} and {b} overlap")
            }
            InvalidMinorMap::EdgeNotRealized(a, b) => {
                write!(f, "minor edge {{{a},{b}}} is not realized")
            }
            InvalidMinorMap::UnknownVertex(v) => write!(f, "unknown host vertex {v}"),
        }
    }
}

impl std::error::Error for InvalidMinorMap {}

impl MinorMap {
    /// Builds a minor map from branch sets (one per minor vertex, in order).
    pub fn new(branch_sets: Vec<BTreeSet<usize>>) -> Self {
        MinorMap { branch_sets }
    }

    /// The identity embedding: minor vertex `h` maps to host vertex
    /// `vertex_ids[h]`. Used when the host literally contains the minor as a
    /// subgraph with known ids (the grid-shaped query families).
    pub fn identity(vertex_ids: &[usize]) -> Self {
        MinorMap {
            branch_sets: vertex_ids.iter().map(|&v| BTreeSet::from([v])).collect(),
        }
    }

    /// `µ(h)`.
    pub fn branch_set(&self, h: usize) -> &BTreeSet<usize> {
        &self.branch_sets[h]
    }

    /// Number of minor vertices covered.
    pub fn len(&self) -> usize {
        self.branch_sets.len()
    }

    /// Whether the map covers no minor vertex.
    pub fn is_empty(&self) -> bool {
        self.branch_sets.is_empty()
    }

    /// The minor vertex whose branch set contains host vertex `v`, if any.
    /// Branch sets of a valid map are disjoint, so this is unique.
    pub fn preimage(&self, v: usize) -> Option<usize> {
        self.branch_sets.iter().position(|s| s.contains(&v))
    }

    /// Whether the branch sets cover every host vertex.
    pub fn is_onto(&self, host: &Graph) -> bool {
        let covered: usize = self.branch_sets.iter().map(|s| s.len()).sum();
        covered == host.vertex_count()
    }

    /// Validates the three minor-map conditions against `host` and `minor`.
    pub fn validate(&self, host: &Graph, minor: &Graph) -> Result<(), InvalidMinorMap> {
        if self.branch_sets.len() != minor.vertex_count() {
            return Err(InvalidMinorMap::WrongArity);
        }
        for (h, s) in self.branch_sets.iter().enumerate() {
            if s.is_empty() {
                return Err(InvalidMinorMap::EmptyBranchSet(h));
            }
            if let Some(&v) = s.iter().find(|&&v| v >= host.vertex_count()) {
                return Err(InvalidMinorMap::UnknownVertex(v));
            }
            let vs: Vec<usize> = s.iter().copied().collect();
            let (sub, _) = host.induced_subgraph(&vs);
            if !sub.is_connected() {
                return Err(InvalidMinorMap::DisconnectedBranchSet(h));
            }
        }
        for a in 0..self.branch_sets.len() {
            for b in (a + 1)..self.branch_sets.len() {
                if self.branch_sets[a]
                    .intersection(&self.branch_sets[b])
                    .next()
                    .is_some()
                {
                    return Err(InvalidMinorMap::Overlap(a, b));
                }
            }
        }
        for (a, b) in minor.edges() {
            let realized = self.branch_sets[a]
                .iter()
                .any(|&u| host.neighbors(u).any(|w| self.branch_sets[b].contains(&w)));
            if !realized {
                return Err(InvalidMinorMap::EdgeNotRealized(a, b));
            }
        }
        Ok(())
    }

    /// Extends the map to be onto a **connected** host by repeatedly
    /// absorbing uncovered vertices into an adjacent branch set (the paper's
    /// "we can assume w.l.o.g. that µ is onto" step).
    ///
    /// Panics if the host is disconnected from every branch set.
    pub fn extend_onto(&mut self, host: &Graph) {
        let mut owner: Vec<Option<usize>> = vec![None; host.vertex_count()];
        for (h, s) in self.branch_sets.iter().enumerate() {
            for &v in s {
                owner[v] = Some(h);
            }
        }
        loop {
            let mut changed = false;
            for v in 0..host.vertex_count() {
                if owner[v].is_some() {
                    continue;
                }
                if let Some(h) = host.neighbors(v).find_map(|u| owner[u]) {
                    owner[v] = Some(h);
                    self.branch_sets[h].insert(v);
                    changed = true;
                }
            }
            if owner.iter().all(|o| o.is_some()) {
                return;
            }
            assert!(
                changed,
                "host has vertices unreachable from every branch set; extend_onto \
                 requires a connected host"
            );
        }
    }
}

/// Searches for a minor map from `minor` into `host`.
///
/// Strategy: backtracking over minor vertices in degree-descending order,
/// growing branch sets on demand (each branch set starts as a singleton and
/// may absorb up to `grow_budget` extra host vertices to realize adjacency).
/// Complete for singleton branch sets (subgraph embeddings); with a positive
/// budget it finds genuinely contracted minors on small hosts. Intended for
/// the small graphs that appear in tests and reduction inputs — grid-shaped
/// hosts should use [`MinorMap::identity`] instead.
pub fn find_minor(host: &Graph, minor: &Graph, grow_budget: usize) -> Option<MinorMap> {
    let hm = minor.vertex_count();
    let mut order: Vec<usize> = (0..hm).collect();
    order.sort_by_key(|&h| std::cmp::Reverse(minor.degree(h)));
    let mut sets: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); hm];
    let mut used: BTreeSet<usize> = BTreeSet::new();
    if assign(host, minor, &order, 0, &mut sets, &mut used, grow_budget) {
        Some(MinorMap::new(sets))
    } else {
        None
    }
}

fn adjacency_ok(host: &Graph, minor: &Graph, sets: &[BTreeSet<usize>], placed: &[usize]) -> bool {
    let h = *placed.last().expect("nonempty");
    for &g in &placed[..placed.len() - 1] {
        if minor.has_edge(h, g) {
            let ok = sets[h]
                .iter()
                .any(|&u| host.neighbors(u).any(|w| sets[g].contains(&w)));
            if !ok {
                return false;
            }
        }
    }
    true
}

fn assign(
    host: &Graph,
    minor: &Graph,
    order: &[usize],
    idx: usize,
    sets: &mut Vec<BTreeSet<usize>>,
    used: &mut BTreeSet<usize>,
    grow_budget: usize,
) -> bool {
    if idx == order.len() {
        return true;
    }
    let h = order[idx];
    let placed: Vec<usize> = order[..=idx].to_vec();
    for v in 0..host.vertex_count() {
        if used.contains(&v) {
            continue;
        }
        sets[h].insert(v);
        used.insert(v);
        if try_grow(host, minor, order, idx, sets, used, grow_budget, &placed) {
            return true;
        }
        used.remove(&v);
        sets[h].clear();
    }
    false
}

#[allow(clippy::too_many_arguments)]
fn try_grow(
    host: &Graph,
    minor: &Graph,
    order: &[usize],
    idx: usize,
    sets: &mut Vec<BTreeSet<usize>>,
    used: &mut BTreeSet<usize>,
    grow_budget: usize,
    placed: &[usize],
) -> bool {
    if adjacency_ok(host, minor, sets, placed)
        && assign(host, minor, order, idx + 1, sets, used, grow_budget)
    {
        return true;
    }
    let h = order[idx];
    if sets[h].len() > grow_budget {
        return false;
    }
    // Absorb one adjacent unused vertex and retry.
    let frontier: Vec<usize> = sets[h]
        .iter()
        .flat_map(|&u| host.neighbors(u))
        .filter(|v| !used.contains(v))
        .collect();
    for v in frontier {
        if sets[h].contains(&v) {
            continue;
        }
        sets[h].insert(v);
        used.insert(v);
        if try_grow(host, minor, order, idx, sets, used, grow_budget, placed) {
            return true;
        }
        used.remove(&v);
        sets[h].remove(&v);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::grid;

    fn triangle() -> Graph {
        let mut g = Graph::new(3);
        g.make_clique(&[0, 1, 2]);
        g
    }

    #[test]
    fn identity_map_validates_on_grid() {
        let g = grid(2, 3);
        let m = MinorMap::identity(&(0..6).collect::<Vec<_>>());
        m.validate(&g, &grid(2, 3)).unwrap();
        assert!(m.is_onto(&g));
    }

    #[test]
    fn invalid_maps_rejected() {
        let host = grid(2, 2);
        let minor = triangle();
        // 2x2 grid (a 4-cycle) has no triangle minor with these sets:
        let m = MinorMap::new(vec![
            BTreeSet::from([0]),
            BTreeSet::from([1]),
            BTreeSet::from([3]),
        ]);
        // 0-1 edge ok, 1-3 edge ok, 0-3 not adjacent in C4 (ids 0,1,3: 0-1,1-3,0-2,2-3)
        assert_eq!(
            m.validate(&host, &minor),
            Err(InvalidMinorMap::EdgeNotRealized(0, 2))
        );
        let m = MinorMap::new(vec![
            BTreeSet::new(),
            BTreeSet::from([1]),
            BTreeSet::from([3]),
        ]);
        assert_eq!(
            m.validate(&host, &minor),
            Err(InvalidMinorMap::EmptyBranchSet(0))
        );
        let m = MinorMap::new(vec![
            BTreeSet::from([0, 3]), // not connected in C4? 0-3 not edge => disconnected
            BTreeSet::from([1]),
            BTreeSet::from([2]),
        ]);
        assert_eq!(
            m.validate(&host, &minor),
            Err(InvalidMinorMap::DisconnectedBranchSet(0))
        );
    }

    #[test]
    fn overlap_detected() {
        let host = grid(1, 3);
        let mut minor = Graph::new(2);
        minor.add_edge(0, 1);
        let m = MinorMap::new(vec![BTreeSet::from([0, 1]), BTreeSet::from([1, 2])]);
        assert_eq!(
            m.validate(&host, &minor),
            Err(InvalidMinorMap::Overlap(0, 1))
        );
    }

    #[test]
    fn triangle_minor_of_c4_requires_contraction() {
        // C4 has a triangle minor (contract one edge). Singleton budget fails,
        // budget 1 succeeds.
        let host = grid(2, 2); // the 4-cycle
        let minor = triangle();
        assert!(find_minor(&host, &minor, 0).is_none());
        let m = find_minor(&host, &minor, 1).expect("triangle is a minor of C4");
        m.validate(&host, &minor).unwrap();
    }

    #[test]
    fn subgraph_embedding_found() {
        // path of 3 embeds in a 3x3 grid with singleton branch sets.
        let host = grid(3, 3);
        let minor = grid(1, 3);
        let m = find_minor(&host, &minor, 0).expect("path embeds");
        m.validate(&host, &minor).unwrap();
    }

    #[test]
    fn extend_onto_covers_connected_host() {
        let host = grid(3, 3);
        let mut m = find_minor(&host, &grid(2, 2), 0).expect("C4 embeds in grid");
        m.validate(&host, &grid(2, 2)).unwrap();
        m.extend_onto(&host);
        assert!(m.is_onto(&host));
        m.validate(&host, &grid(2, 2)).unwrap();
    }

    #[test]
    fn preimage_unique_owner() {
        let m = MinorMap::new(vec![BTreeSet::from([0, 1]), BTreeSet::from([4])]);
        assert_eq!(m.preimage(1), Some(0));
        assert_eq!(m.preimage(4), Some(1));
        assert_eq!(m.preimage(9), None);
    }

    #[test]
    fn grid_minor_of_bigger_grid() {
        let host = grid(3, 4);
        let minor = grid(2, 2);
        let m = find_minor(&host, &minor, 0).expect("2x2 grid embeds in 3x4 grid");
        m.validate(&host, &minor).unwrap();
    }
}
