//! E10 — the hardness side (Prop 3.3(1) vs 3.3(3)): clique-query OMQs blow
//! up in `k`, path-query OMQs do not.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtgd_bench::workloads::{clique_cq, graph_db, path_cq, plant_clique, random_graph};
use gtgd_chase::parse_tgds;
use gtgd_core::{check_omq, check_omq_fpt, EvalConfig, Omq};
use gtgd_query::Ucq;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_hardness_shape");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let sigma = parse_tgds("E(X,Y) -> Node(X), Node(Y)").unwrap();
    let mut g = random_graph(13, 0.5, 97);
    plant_clique(&mut g, 5, 13);
    let db = graph_db(&g);
    let cfg = EvalConfig::default();
    for &k in &[2usize, 3, 4, 5] {
        let qc = Omq::full_schema(sigma.clone(), Ucq::single(clique_cq(k)));
        group.bench_with_input(BenchmarkId::new("clique_query", k), &db, |b, db| {
            b.iter(|| check_omq(&qc, db, &[], &cfg))
        });
        let qp = Omq::full_schema(sigma.clone(), Ucq::single(path_cq(k)));
        group.bench_with_input(BenchmarkId::new("path_query", k), &db, |b, db| {
            b.iter(|| check_omq_fpt(&qp, db, &[], &cfg))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
