//! A constraint-aware query planner: the paper's Section 1 motivation
//! ("TGDs as integrity constraints pave the way to constraint-aware query
//! optimization") turned into an executable pipeline.
//!
//! Given a CQS `(Σ, q)`, the planner:
//!
//! 1. tries to lower the query's **semantic treewidth modulo Σ**
//!    (Theorem 5.10's meta problem, via the contraction approximation) for
//!    `k = 1, 2, …` up to the query's syntactic treewidth;
//! 2. picks an evaluation engine per disjunct of the chosen rewriting:
//!    Yannakakis semijoins when α-acyclic, the Prop 2.1
//!    tree-decomposition DP otherwise (its exponent is the established
//!    treewidth bound);
//! 3. exposes the decisions as an inspectable [`Plan`].

use crate::approx::cqs_uniformly_ucqk_equivalent;
use crate::cqs::{Cqs, CqsViolation};
use crate::eval::EvalConfig;
use gtgd_data::{Instance, Value};
use gtgd_query::acyclic::is_alpha_acyclic;
use gtgd_query::decomp_eval::check_answer_decomposed;
use gtgd_query::tw::{cq_treewidth, ucq_treewidth};
use gtgd_query::{check_answer_yannakakis, Cq, Ucq};

/// The engine chosen for one disjunct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Yannakakis semijoin program (α-acyclic disjunct).
    Yannakakis,
    /// Prop 2.1 tree-decomposition dynamic programming.
    DecompositionDp,
}

/// One planned disjunct.
#[derive(Debug, Clone)]
pub struct PlannedDisjunct {
    /// The (possibly rewritten) CQ.
    pub cq: Cq,
    /// Its treewidth (the DP exponent bound).
    pub treewidth: usize,
    /// The chosen engine.
    pub engine: Engine,
}

/// An executable plan for a CQS.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The constraints (kept for the promise check).
    pub sigma: Vec<gtgd_chase::Tgd>,
    /// The planned disjuncts (a UCQ Σ-equivalent to the input query).
    pub disjuncts: Vec<PlannedDisjunct>,
    /// Treewidth of the input query.
    pub input_treewidth: usize,
    /// Treewidth of the rewriting actually planned.
    pub planned_treewidth: usize,
    /// Whether a Σ-aware rewriting strictly lowered the treewidth.
    pub rewritten: bool,
}

impl Plan {
    /// Renders the plan for inspection.
    pub fn explain(&self) -> String {
        let mut out = format!(
            "plan: input tw {} → planned tw {}{}\n",
            self.input_treewidth,
            self.planned_treewidth,
            if self.rewritten {
                " (constraint-aware rewriting applied)"
            } else {
                ""
            }
        );
        for (i, d) in self.disjuncts.iter().enumerate() {
            out.push_str(&format!(
                "  disjunct {i}: tw {} via {:?}: {}\n",
                d.treewidth, d.engine, d.cq
            ));
        }
        out
    }

    /// Executes the plan: `c̄ ∈ q(D)` under the promise `D |= Σ`.
    pub fn check(&self, db: &Instance, answer: &[Value]) -> Result<bool, CqsViolation> {
        for t in &self.sigma {
            if !gtgd_chase::satisfies(db, t) {
                return Err(CqsViolation {
                    constraint: t.to_string(),
                });
            }
        }
        Ok(self.disjuncts.iter().any(|d| match d.engine {
            Engine::Yannakakis => check_answer_yannakakis(&d.cq, db, answer)
                .expect("planner only assigns Yannakakis to acyclic disjuncts"),
            Engine::DecompositionDp => check_answer_decomposed(&d.cq, db, answer),
        }))
    }
}

/// Plans a CQS: constraint-aware rewriting, then per-disjunct engine
/// selection. `max_k` caps the semantic-treewidth search (use 2 or 3; the
/// meta problem is exponential in the query).
pub fn plan_cqs(s: &Cqs, max_k: usize, cfg: &EvalConfig) -> Plan {
    let input_tw = ucq_treewidth(&s.query);
    // Search for the least k < input_tw with a Σ-rewriting.
    let mut chosen: Option<(usize, Ucq)> = None;
    for k in 1..input_tw.min(max_k + 1) {
        let (verdict, rewriting) = cqs_uniformly_ucqk_equivalent(s, k, cfg);
        if verdict.holds && verdict.exact {
            if let Some(r) = rewriting {
                chosen = Some((k, r.query));
                break;
            }
        }
    }
    let (planned_tw, query, rewritten) = match chosen {
        Some((k, q)) => (k, q, true),
        None => (input_tw, s.query.clone(), false),
    };
    let disjuncts = query
        .disjuncts
        .iter()
        .map(|cq| {
            let engine = if is_alpha_acyclic(cq) {
                Engine::Yannakakis
            } else {
                Engine::DecompositionDp
            };
            PlannedDisjunct {
                treewidth: cq_treewidth(cq),
                engine,
                cq: cq.clone(),
            }
        })
        .collect();
    Plan {
        sigma: s.sigma.clone(),
        disjuncts,
        input_treewidth: input_tw,
        planned_treewidth: planned_tw,
        rewritten,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtgd_chase::parse_tgds;
    use gtgd_data::GroundAtom;
    use gtgd_query::parse_ucq;

    fn cfg() -> EvalConfig {
        EvalConfig::default()
    }

    fn example_4_4() -> Cqs {
        Cqs::new(
            parse_tgds("R2(X) -> R4(X)").unwrap(),
            parse_ucq(
                "Q() :- P(X2,X1), P(X4,X1), P(X2,X3), P(X4,X3), \
                 R1(X1), R2(X2), R3(X3), R4(X4)",
            )
            .unwrap(),
        )
    }

    #[test]
    fn planner_applies_constraint_rewriting() {
        let plan = plan_cqs(&example_4_4(), 2, &cfg());
        assert!(plan.rewritten, "Example 4.4 rewrites to treewidth 1");
        assert_eq!(plan.input_treewidth, 2);
        assert_eq!(plan.planned_treewidth, 1);
        assert!(!plan.explain().is_empty());
    }

    #[test]
    fn planner_without_constraints_keeps_query() {
        let s = Cqs::new(vec![], example_4_4().query);
        let plan = plan_cqs(&s, 2, &cfg());
        assert!(!plan.rewritten, "the core is genuinely treewidth 2");
        assert_eq!(plan.planned_treewidth, 2);
    }

    #[test]
    fn plan_execution_matches_direct_evaluation() {
        let s = example_4_4();
        let plan = plan_cqs(&s, 2, &cfg());
        // A Σ-satisfying database with a diamond match.
        let db = Instance::from_atoms([
            GroundAtom::named("P", &["b", "a"]),
            GroundAtom::named("P", &["b", "c"]),
            GroundAtom::named("R1", &["a"]),
            GroundAtom::named("R2", &["b"]),
            GroundAtom::named("R4", &["b"]),
            GroundAtom::named("R3", &["c"]),
        ]);
        assert_eq!(
            plan.check(&db, &[]).unwrap(),
            s.check(&db, &[]).unwrap(),
            "plan and direct evaluation agree (positive)"
        );
        assert!(plan.check(&db, &[]).unwrap());
        // A Σ-satisfying database without a match.
        let db2 = Instance::from_atoms([
            GroundAtom::named("P", &["b", "a"]),
            GroundAtom::named("R1", &["a"]),
        ]);
        assert_eq!(
            plan.check(&db2, &[]).unwrap(),
            s.check(&db2, &[]).unwrap(),
            "plan and direct evaluation agree (negative)"
        );
    }

    #[test]
    fn plan_enforces_promise() {
        let plan = plan_cqs(&example_4_4(), 2, &cfg());
        // R2 without R4 violates Σ.
        let bad = Instance::from_atoms([GroundAtom::named("R2", &["b"])]);
        assert!(plan.check(&bad, &[]).is_err());
    }

    #[test]
    fn engine_selection() {
        // An acyclic query gets Yannakakis; a cyclic one gets the DP.
        let acyclic = Cqs::new(vec![], parse_ucq("Q(X) :- E(X,Y), P(Y)").unwrap());
        let plan = plan_cqs(&acyclic, 2, &cfg());
        assert_eq!(plan.disjuncts[0].engine, Engine::Yannakakis);
        let cyclic = Cqs::new(vec![], parse_ucq("Q() :- E(X,Y), E(Y,Z), E(Z,X)").unwrap());
        let plan = plan_cqs(&cyclic, 1, &cfg());
        assert_eq!(plan.disjuncts[0].engine, Engine::DecompositionDp);
    }
}
