//! Shared command-line machinery for the `gtgd` binary: every subcommand
//! (`eval`, `snapshot`, `serve`, `maintain`, `ingest`, `gen`) declares a
//! [`Command`] — usage line, flag table, positional bounds — and parses
//! through the same loop. That buys uniform behavior everywhere:
//!
//! * `--help`/`-h` renders a per-subcommand help page and short-circuits;
//! * unknown flags are **rejected** (exit code 2), never silently
//!   swallowed into positionals;
//! * flags that need values get them or fail with a described error;
//! * positional counts are checked against the declared bounds.
//!
//! The module is std-only and declarative on purpose — a `Command` is a
//! `const`, so the flag table in `--help` can never drift from what the
//! parser accepts.

use crate::error::GtgdError;

/// One flag a command accepts.
#[derive(Debug, Clone, Copy)]
pub struct Flag {
    /// The flag spelling, with dashes (`"--addr"`).
    pub name: &'static str,
    /// `Some(placeholder)` if the flag takes a value (`Some("HOST:PORT")`),
    /// `None` for a boolean switch.
    pub value: Option<&'static str>,
    /// One-line help text.
    pub help: &'static str,
}

/// A subcommand's interface: everything the parser and `--help` need.
#[derive(Debug, Clone, Copy)]
pub struct Command {
    /// Subcommand name as typed (`"serve"`; `""` for the default command).
    pub name: &'static str,
    /// Placeholder text for positionals (`"<snapshot.gsnap>"`).
    pub args: &'static str,
    /// One-paragraph description for `--help`.
    pub about: &'static str,
    /// Accepted flags; anything else starting with `-` is rejected.
    pub flags: &'static [Flag],
    /// Minimum number of positional arguments.
    pub min_args: usize,
    /// Maximum number of positional arguments.
    pub max_args: usize,
}

/// A successful parse: which switches were set, flag values, positionals.
#[derive(Debug, Default)]
pub struct Parsed {
    switches: Vec<&'static str>,
    values: Vec<(&'static str, String)>,
    /// Positional arguments, in order.
    pub args: Vec<String>,
}

impl Parsed {
    /// Whether the boolean switch `name` was present.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| *s == name)
    }

    /// The value of flag `name`, if given (last occurrence wins).
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parses the value of flag `name` as an integer, with a described
    /// usage error naming the flag on failure.
    pub fn int_value(&self, name: &str) -> Result<Option<u64>, GtgdError> {
        match self.value(name) {
            None => Ok(None),
            Some(v) => v.parse::<u64>().map(Some).map_err(|_| {
                GtgdError::Usage(format!("{name} expects a non-negative integer, got `{v}`"))
            }),
        }
    }
}

/// What a parse produced: arguments to run with, or a rendered help page
/// the caller should print and exit 0.
#[derive(Debug)]
pub enum Invocation {
    /// Run the command with these parsed arguments.
    Run(Parsed),
    /// `--help` was requested; print this page.
    Help(String),
}

impl Command {
    /// The `gtgd <name>` prefix for messages (`gtgd` for the default).
    fn display_name(&self) -> String {
        if self.name.is_empty() {
            "gtgd".to_string()
        } else {
            format!("gtgd {}", self.name)
        }
    }

    /// One-line usage string.
    pub fn usage(&self) -> String {
        let flags = if self.flags.is_empty() { "" } else { " [flags]" };
        format!("{}{flags} {}", self.display_name(), self.args)
            .trim_end()
            .to_string()
    }

    /// The full `--help` page.
    pub fn render_help(&self) -> String {
        let mut out = format!("{}\n\nusage: {}\n", self.about.trim(), self.usage());
        if !self.flags.is_empty() {
            out.push_str("\nflags:\n");
            let rendered: Vec<(String, &str)> = self
                .flags
                .iter()
                .map(|f| {
                    let head = match f.value {
                        Some(v) => format!("{} {v}", f.name),
                        None => f.name.to_string(),
                    };
                    (head, f.help)
                })
                .collect();
            let width = rendered.iter().map(|(h, _)| h.len()).max().unwrap_or(0);
            for (head, help) in rendered {
                out.push_str(&format!("  {head:width$}  {help}\n"));
            }
        }
        out.push_str("  --help            show this help\n");
        out
    }

    /// Parses `argv` (the arguments after the subcommand name).
    pub fn parse(&self, argv: &[String]) -> Result<Invocation, GtgdError> {
        let mut parsed = Parsed::default();
        let mut it = argv.iter();
        let mut positional_only = false;
        while let Some(a) = it.next() {
            if !positional_only && (a == "--help" || a == "-h") {
                return Ok(Invocation::Help(self.render_help()));
            }
            if !positional_only && a == "--" {
                positional_only = true;
                continue;
            }
            // `-` alone is a positional (stdin), not a flag.
            if positional_only || !a.starts_with('-') || a == "-" {
                parsed.args.push(a.clone());
                continue;
            }
            match self.flags.iter().find(|f| f.name == a) {
                Some(f) => match f.value {
                    None => parsed.switches.push(f.name),
                    Some(placeholder) => match it.next() {
                        Some(v) => parsed.values.push((f.name, v.clone())),
                        None => {
                            return Err(GtgdError::Usage(format!(
                                "{} needs a {placeholder} value",
                                f.name
                            )))
                        }
                    },
                },
                None => {
                    return Err(GtgdError::Usage(format!(
                        "unknown flag `{a}` for {}; try `{} --help`",
                        self.display_name(),
                        self.display_name()
                    )))
                }
            }
        }
        if parsed.args.len() < self.min_args || parsed.args.len() > self.max_args {
            return Err(GtgdError::Usage(self.usage()));
        }
        Ok(Invocation::Run(parsed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CMD: Command = Command {
        name: "demo",
        args: "<input>",
        about: "A demo command.",
        flags: &[
            Flag {
                name: "--addr",
                value: Some("HOST:PORT"),
                help: "bind address",
            },
            Flag {
                name: "--fast",
                value: None,
                help: "go fast",
            },
        ],
        min_args: 1,
        max_args: 1,
    };

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_values_positionals() {
        let Invocation::Run(p) = CMD
            .parse(&argv(&["--fast", "--addr", "h:1", "in.txt"]))
            .unwrap()
        else {
            panic!("expected Run");
        };
        assert!(p.has("--fast"));
        assert_eq!(p.value("--addr"), Some("h:1"));
        assert_eq!(p.args, vec!["in.txt"]);
    }

    #[test]
    fn rejects_unknown_flags_and_bad_arity() {
        let e = CMD.parse(&argv(&["--nope", "x"])).unwrap_err();
        assert!(e.to_string().contains("unknown flag `--nope`"), "{e}");
        assert_eq!(e.exit_code(), 2);
        let e = CMD.parse(&argv(&[])).unwrap_err();
        assert!(e.to_string().contains("gtgd demo"), "{e}");
        let e = CMD.parse(&argv(&["a", "b"])).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        let e = CMD.parse(&argv(&["--addr"])).unwrap_err();
        assert!(e.to_string().contains("HOST:PORT"), "{e}");
    }

    #[test]
    fn help_lists_every_flag() {
        let Invocation::Help(h) = CMD.parse(&argv(&["--help"])).unwrap() else {
            panic!("expected Help");
        };
        assert!(h.contains("--addr HOST:PORT") && h.contains("--fast"), "{h}");
        assert!(h.contains("usage: gtgd demo"), "{h}");
    }

    #[test]
    fn dash_is_stdin_and_double_dash_ends_flags() {
        let Invocation::Run(p) = CMD.parse(&argv(&["-"])).unwrap() else {
            panic!("expected Run");
        };
        assert_eq!(p.args, vec!["-"]);
        let Invocation::Run(p) = CMD.parse(&argv(&["--", "--fast"])).unwrap() else {
            panic!("expected Run");
        };
        assert_eq!(p.args, vec!["--fast"]);
        assert!(!p.has("--fast"));
    }

    #[test]
    fn int_values_are_checked() {
        let Invocation::Run(p) = CMD.parse(&argv(&["--addr", "12", "x"])).unwrap() else {
            panic!("expected Run");
        };
        assert_eq!(p.int_value("--addr").unwrap(), Some(12));
        let Invocation::Run(p) = CMD.parse(&argv(&["--addr", "nope", "x"])).unwrap() else {
            panic!("expected Run");
        };
        assert!(p.int_value("--addr").is_err());
    }
}
