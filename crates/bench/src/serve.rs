//! E17 — snapshot + serve amortization benchmark (`BENCH_serve.json`).
//!
//! Measures what `gtgd serve` buys over the one-shot CLI on the org
//! (E9/E16-style existential chain) and transitive-closure (E15-style)
//! workloads: the *cold* column times a full `gtgd` process run — spawn,
//! parse, chase, plan, evaluate — while the *warm* column times one query
//! round-trip against a long-lived daemon that loaded a snapshot once
//! (no chase, no index build, and after the first request no plan
//! compilation on the hot path). The *load vs re-chase* pair isolates the
//! snapshot itself: deserializing the persisted fixpoint (sequential
//! read plus validated index install; row indexes and the fired set stay
//! deferred) against re-running the chase that produced it.

use crate::experiments::bench_ms;
use crate::json::escape;
use crate::workloads::{org_db, path_db};
use gtgd_chase::{parse_tgds, ChaseBudget, ChaseRunner, MaintainedInstance, Tgd};
use gtgd_data::Instance;
use gtgd_query::{parse_cq, Engine};
use gtgd_storage::{load_snapshot, save_snapshot, Client, Server};
use std::path::PathBuf;
use std::time::Instant;

/// One serve workload: rules (one string per TGD so they render as script
/// `tgd` lines), a base database, and the query the daemon will answer.
pub struct ServeWorkload {
    /// Row label (`"org/400"`).
    pub key: String,
    /// The ontology, one parseable rule per entry.
    pub rules: Vec<String>,
    /// The base database.
    pub db: Instance,
    /// The query, in `Q(X) :- ...` syntax.
    pub query: String,
}

/// The org workload at employee count `n`: the terminating existential
/// chain ontology E16 uses over [`org_db`], plus a same-department join
/// rule so the chase performs real join discovery (not just chain
/// firing), queried for the named employee→department pairs.
pub fn org_workload(n: usize) -> ServeWorkload {
    ServeWorkload {
        key: format!("org/{n}"),
        rules: vec![
            "Emp(X) -> WorksIn(X,D)".into(),
            "WorksIn(X,D) -> Dept(D)".into(),
            "Dept(D) -> Audited(D)".into(),
            "WorksIn(X,D), WorksIn(Y,D) -> Colleague(X,Y)".into(),
        ],
        db: org_db(n),
        query: "Q(X, D) :- Emp(X), WorksIn(X, D)".into(),
    }
}

/// The transitive-closure workload over a path of length `n`: the E15
/// ontology `E(X,Y), E(Y,Z) -> E(X,Z)`, queried for every edge of the
/// closure (all answers are named, so the daemon streams the full TC).
pub fn tc_workload(n: usize) -> ServeWorkload {
    ServeWorkload {
        key: format!("tc/{n}"),
        rules: vec!["E(X,Y), E(Y,Z) -> E(X,Z)".into()],
        db: path_db(n),
        query: "Q(X, Y) :- E(X, Y)".into(),
    }
}

/// One measured row of `BENCH_serve.json`.
#[derive(Debug, Clone)]
pub struct ServeMetric {
    /// Workload label.
    pub workload: String,
    /// Atoms in the chased fixpoint (what the snapshot persists).
    pub atoms: usize,
    /// Certain (null-free) answers the query returns.
    pub answers: usize,
    /// Snapshot file size in bytes.
    pub snapshot_bytes: u64,
    /// Full cold run in ms: chase + plan + evaluate from nothing. Spawns
    /// the real `gtgd` binary when one is built next to the current
    /// executable; otherwise falls back to the same work in-process (see
    /// `cold_source`).
    pub cold_ms: f64,
    /// `"gtgd process"` or `"in-process"` — how the cold column ran.
    pub cold_source: String,
    /// First daemon query in ms (pays the one plan compilation).
    pub warm_first_ms: f64,
    /// Steady-state warm query round-trip in ms (plan cache hit; no
    /// chase, no index build).
    pub warm_query_ms: f64,
    /// Re-running the chase that produced the fixpoint, in ms.
    pub rechase_ms: f64,
    /// Loading the snapshot back to a query-ready instance (sequential
    /// decode + validated index install; the fired set stays frozen), in
    /// ms.
    pub load_ms: f64,
    /// Thawing the loaded snapshot into a write-ready maintained state
    /// (dependency-index rebuild by hashing — paid once, by the first
    /// write, off the query hot path), in ms.
    pub thaw_ms: f64,
    /// Daemon answers identical to a single-shot `Engine::prepare` over
    /// the maintained fixpoint (and to the cold process's answer count).
    pub answers_agree: bool,
}

impl ServeMetric {
    /// How many times cheaper the warm daemon query is than the cold run
    /// (`cold / warm`; 0-safe).
    pub fn cold_over_warm(&self) -> f64 {
        if self.warm_query_ms > 0.0 {
            self.cold_ms / self.warm_query_ms
        } else {
            0.0
        }
    }

    /// How many times faster loading the snapshot is than re-chasing
    /// (`rechase / load`; 0-safe).
    pub fn load_speedup(&self) -> f64 {
        if self.load_ms > 0.0 {
            self.rechase_ms / self.load_ms
        } else {
            0.0
        }
    }
}

/// The `gtgd` binary built alongside the current executable, if any —
/// `target/<profile>/gtgd` for both the `experiments` binary and the test
/// runners (which live one level deeper, in `deps/`).
pub fn gtgd_binary() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let name = format!("gtgd{}", std::env::consts::EXE_SUFFIX);
    exe.ancestors()
        .skip(1)
        .take(4)
        .map(|d| d.join(&name))
        .find(|p| p.is_file())
}

/// Renders a workload as a `gtgd` script (see `gtgd::script`).
fn script_text(w: &ServeWorkload) -> String {
    let mut s = String::from("mode open.\n");
    for r in &w.rules {
        s.push_str(&format!("tgd {r}.\n"));
    }
    for a in w.db.iter() {
        s.push_str(&format!("fact {a}.\n"));
    }
    s.push_str(&format!("query {}.\n", w.query));
    s
}

fn temp_file(tag: &str, key: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "gtgd-serve-bench-{}-{tag}-{}",
        std::process::id(),
        key.replace('/', "_")
    ))
}

/// Runs the cold leg once and returns its reported answer count, or
/// `None` if the process failed.
fn cold_process_answers(bin: &PathBuf, script: &PathBuf) -> Option<usize> {
    let out = std::process::Command::new(bin).arg(script).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The summary line reads "open-world (OMQ); N answer(s); exact = …".
    let tail = stdout.split("; ").nth(1)?;
    tail.strip_suffix(" answer(s)")
        .or_else(|| tail.split(' ').next())?
        .trim()
        .parse()
        .ok()
}

/// Measures one workload end to end. The daemon runs in-process (same
/// `Server` the `gtgd serve` subcommand drives); the cold column spawns
/// the real binary when available so it pays genuine process startup.
pub fn measure(w: &ServeWorkload) -> ServeMetric {
    let tgds: Vec<Tgd> = parse_tgds(&w.rules.join(". ")).unwrap();
    let budget = ChaseBudget::atoms(10_000_000);
    let rechase =
        || -> MaintainedInstance { ChaseRunner::new(&tgds).budget(budget).maintain(&w.db) };
    let rechase_ms = bench_ms(|| rechase().instance().len());
    let m = rechase();

    let snap_path = temp_file("snap", &w.key);
    save_snapshot(&snap_path, &tgds, &m).unwrap();
    let snapshot_bytes = std::fs::metadata(&snap_path)
        .map(|md| md.len())
        .unwrap_or(0);
    let load_ms = bench_ms(|| load_snapshot(&snap_path).unwrap().instance().len());
    let loaded = load_snapshot(&snap_path).unwrap();
    let thaw_ms = bench_ms(|| loaded.to_maintained().unwrap().instance().len());

    // Reference answers: single-shot prepared evaluation over the
    // maintained fixpoint, certain (null-free) rows only, string-sorted.
    let cq = parse_cq(&w.query).unwrap();
    let mut expect: Vec<Vec<String>> = Engine::prepare(&cq)
        .answers(m.instance())
        .into_iter()
        .filter(|row| row.iter().all(|v| v.is_named()))
        .map(|row| row.iter().map(ToString::to_string).collect())
        .collect();
    expect.sort();

    // Cold leg: the real binary when built, the same work in-process
    // otherwise (test runs of this crate alone don't build `gtgd`).
    let script_path = temp_file("script", &w.key);
    std::fs::write(&script_path, script_text(w)).unwrap();
    let bin = gtgd_binary();
    let (cold_ms, cold_source, cold_answers) = match &bin {
        Some(bin) => {
            let n = cold_process_answers(bin, &script_path);
            let ms = bench_ms(|| {
                let out = std::process::Command::new(bin)
                    .arg(&script_path)
                    .output()
                    .expect("spawn gtgd");
                assert!(out.status.success(), "cold gtgd run failed");
            });
            (ms, "gtgd process".to_string(), n)
        }
        None => {
            let ms = bench_ms(|| {
                let cold = rechase();
                Engine::prepare(&cq).answers(cold.instance()).len()
            });
            (ms, "in-process".to_string(), None)
        }
    };

    // Warm leg: daemon up from the snapshot, one client, first query pays
    // the plan compile, then the steady-state round-trip.
    let server = Server::start(snap_path.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr).unwrap();
    let t = Instant::now();
    let mut got = client.query(&w.query).unwrap();
    let warm_first_ms = t.elapsed().as_secs_f64() * 1e3;
    got.sort();
    let warm_query_ms = bench_ms(|| client.query(&w.query).unwrap().len());
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();

    let answers_agree = got == expect && cold_answers.is_none_or(|n| n == expect.len());
    let metric = ServeMetric {
        workload: w.key.clone(),
        atoms: m.instance().len(),
        answers: expect.len(),
        snapshot_bytes,
        cold_ms,
        cold_source,
        warm_first_ms,
        warm_query_ms,
        rechase_ms,
        load_ms,
        thaw_ms,
        answers_agree,
    };
    std::fs::remove_file(&snap_path).ok();
    std::fs::remove_file(&script_path).ok();
    metric
}

/// Runs the published serve workloads: org at 100 and 400 employees, the
/// 120-node transitive closure.
pub fn serve_benchmark() -> Vec<ServeMetric> {
    [org_workload(100), org_workload(400), tc_workload(120)]
        .iter()
        .map(measure)
        .collect()
}

/// Renders the metrics as the `BENCH_serve.json` document.
pub fn serve_json(metrics: &[ServeMetric]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"description\": \"{}\",\n",
        escape(
            "Snapshot + serve amortization: timings in ms (min over \
             adaptive repeats: >=3, within a ~30 ms budget). 'cold_ms' is \
             a full cold run — spawn the gtgd binary, parse, chase, plan, \
             evaluate ('cold_source' records whether a real process was \
             spawned); 'warm_query_ms' is one round-trip against a \
             long-lived daemon serving the persisted fixpoint with a warm \
             plan cache ('warm_first_ms' paid the one compile). \
             'load_ms' deserializes the snapshot to a query-ready \
             instance (sequential read + validated index install) vs \
             'rechase_ms' re-running the chase; 'thaw_ms' is the deferred \
             fired-set rebuild the first write pays (hashing, no chase). \
             'answers_agree' checks the daemon's certain answers \
             bit-identical to a single-shot prepared evaluation of the \
             same fixpoint."
        )
    ));
    out.push_str("  \"metrics\": [\n");
    let items: Vec<String> = metrics
        .iter()
        .map(|m| {
            format!(
                "    {{\n      \"workload\": \"{}\",\n      \"atoms\": {},\n      \
                 \"answers\": {},\n      \"snapshot_bytes\": {},\n      \
                 \"cold_ms\": {:.3},\n      \"cold_source\": \"{}\",\n      \
                 \"warm_first_ms\": {:.3},\n      \"warm_query_ms\": {:.3},\n      \
                 \"cold_over_warm\": {:.2},\n      \"rechase_ms\": {:.3},\n      \
                 \"load_ms\": {:.3},\n      \"load_speedup\": {:.2},\n      \
                 \"thaw_ms\": {:.3},\n      \"answers_agree\": {}\n    }}",
                escape(&m.workload),
                m.atoms,
                m.answers,
                m.snapshot_bytes,
                m.cold_ms,
                escape(&m.cold_source),
                m.warm_first_ms,
                m.warm_query_ms,
                m.cold_over_warm(),
                m.rechase_ms,
                m.load_ms,
                m.load_speedup(),
                m.thaw_ms,
                m.answers_agree
            )
        })
        .collect();
    out.push_str(&items.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn org_measure_agrees_and_amortizes() {
        let m = measure(&org_workload(60));
        assert!(m.answers_agree, "daemon disagrees with single shot: {m:?}");
        assert_eq!(m.answers, 30, "org/60 has n/2 named WorksIn rows");
        assert!(m.atoms > 60);
        assert!(m.snapshot_bytes > 0);
        assert!(m.warm_query_ms > 0.0 && m.load_ms > 0.0);
        // The warm daemon answers without chasing; even against the
        // in-process cold fallback the gap is at least one chase.
        assert!(m.cold_over_warm() > 1.0, "warm must beat cold: {m:?}");
        assert!(m.load_speedup() > 0.0);
    }

    #[test]
    fn ratios_are_zero_safe() {
        let mut m = ServeMetric {
            workload: "x".into(),
            atoms: 1,
            answers: 1,
            snapshot_bytes: 10,
            cold_ms: 100.0,
            cold_source: "gtgd process".into(),
            warm_first_ms: 1.0,
            warm_query_ms: 0.5,
            rechase_ms: 50.0,
            load_ms: 2.0,
            thaw_ms: 3.0,
            answers_agree: true,
        };
        assert!((m.cold_over_warm() - 200.0).abs() < 1e-9);
        assert!((m.load_speedup() - 25.0).abs() < 1e-9);
        m.warm_query_ms = 0.0;
        m.load_ms = 0.0;
        assert_eq!(m.cold_over_warm(), 0.0);
        assert_eq!(m.load_speedup(), 0.0);
    }

    #[test]
    fn json_is_balanced_and_complete() {
        let metrics = vec![ServeMetric {
            workload: "org/400".into(),
            atoms: 1800,
            answers: 200,
            snapshot_bytes: 123456,
            cold_ms: 25.0,
            cold_source: "gtgd process".into(),
            warm_first_ms: 0.4,
            warm_query_ms: 0.1,
            rechase_ms: 20.0,
            load_ms: 1.0,
            thaw_ms: 2.5,
            answers_agree: true,
        }];
        let json = serve_json(&metrics);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"cold_over_warm\": 250.00"));
        assert!(json.contains("\"load_speedup\": 20.00"));
        assert!(json.contains("\"thaw_ms\": 2.500"));
        assert!(json.contains("\"cold_source\": \"gtgd process\""));
        assert!(json.contains("\"answers_agree\": true"));
        assert!(json.contains("\"snapshot_bytes\": 123456"));
    }

    /// The published `BENCH_serve.json` must carry the acceptance-bar
    /// numbers: every row agrees, warm queries beat the cold process run
    /// by >= 50x, and snapshot load beats re-chase by >= 10x.
    #[test]
    fn published_bench_meets_acceptance_bars() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
        let text = std::fs::read_to_string(path).expect("BENCH_serve.json is committed");
        assert!(text.contains("\"answers_agree\": true"));
        assert!(!text.contains("\"answers_agree\": false"));
        let field = |name: &str| -> Vec<f64> {
            text.lines()
                .filter_map(|l| l.trim().strip_prefix(&format!("\"{name}\": ")))
                .map(|v| v.trim_end_matches(',').parse().expect("numeric field"))
                .collect()
        };
        let warm = field("cold_over_warm");
        let load = field("load_speedup");
        assert_eq!(warm.len(), load.len());
        assert!(!warm.is_empty(), "published file has rows");
        // Every row must amortize; the acceptance bars (warm query ≥ 50×
        // under the cold process run, load ≥ 10× under re-chase) are set
        // at the org n = 400 scale — smaller rows are context, and the
        // tiniest cold runs are spawn-bound, so a fixed multiple of a
        // ~2 ms process launch is not meaningful there.
        for (i, (w, l)) in warm.iter().zip(&load).enumerate() {
            assert!(*w > 1.0, "row {i}: cold/warm {w} does not amortize");
            assert!(*l > 1.0, "row {i}: load {l} not faster than re-chase");
        }
        let names: Vec<&str> = text
            .lines()
            .filter_map(|l| l.trim().strip_prefix("\"workload\": "))
            .map(|v| v.trim_end_matches(','))
            .collect();
        assert_eq!(names.len(), warm.len(), "one workload name per row");
        let at400 = names
            .iter()
            .position(|n| *n == "\"org/400\"")
            .expect("org/400 row is published");
        assert!(
            warm[at400] >= 50.0,
            "org/400 cold/warm {} below the 50x bar",
            warm[at400]
        );
        assert!(
            load[at400] >= 10.0,
            "org/400 load speedup {} below the 10x bar",
            load[at400]
        );
        // The published numbers must come from a genuine process spawn.
        assert!(text.contains("\"cold_source\": \"gtgd process\""));
    }
}
