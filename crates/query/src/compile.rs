//! The compiled homomorphism kernel.
//!
//! [`crate::hom::HomSearch`] gives every consumer the same generic
//! backtracking search, but it pays for generality on every call: variables
//! live in a `HashMap<Var, Value>`, each answer materializes a fresh map,
//! and candidate selection allocates a `Vec` per pending atom per node of
//! the search tree. This module compiles the query *once* into a form the
//! search can run over flat arrays:
//!
//! * **Slot interning** — every variable is assigned a dense slot index at
//!   compile time; the runtime valuation is a `Vec<Option<Value>>` indexed
//!   by slot (O(1) reads/writes, no hashing).
//! * **Access plans** — each atom's terms are pre-resolved to
//!   `Const(value)` / `Slot(index)`, so probing the instance's
//!   `(predicate, position, value)` indexes needs no per-step term
//!   analysis. A static atom order (constant-rich atoms first) seeds the
//!   pending list; the actual order is refined dynamically by picking the
//!   pending atom with the fewest candidates, exactly as the legacy engine
//!   did — which is why the answer *set* is unchanged.
//! * **Columnar answers** — enumeration writes rows into a reusable buffer
//!   and full materialization targets a [`ValuationTable`]
//!   (one `Vec<Value>` for all rows) instead of one `HashMap` per answer.
//!
//! A `CompiledQuery` is immutable and `Sync`: the chase compiles each TGD
//! body once and re-probes it every round from many worker threads.

use crate::cq::{QAtom, Term, Var};
use crate::wcoj::{self, DenseRun, DenseSnapshot, GenericRun, SplitProbe, WcojPlan};
use gtgd_data::{obs, Instance, Pool, Value};
use std::collections::{HashMap, HashSet, VecDeque};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A compiled query term: a dense slot or an inline constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CTerm {
    /// A variable, interned to a slot index.
    Slot(u32),
    /// A constant.
    Const(Value),
}

/// A compiled atom: predicate plus pre-resolved terms.
#[derive(Debug, Clone)]
pub(crate) struct CAtom {
    pub(crate) predicate: gtgd_data::Predicate,
    pub(crate) terms: Vec<CTerm>,
}

/// Which join algorithm a [`KernelSearch`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Let the planner gate decide per compiled query: worst-case-optimal
    /// for cyclic bodies and high-arity multiway joins, backtracking
    /// otherwise. The default.
    #[default]
    Auto,
    /// Force the atom-at-a-time backtracking search.
    Backtrack,
    /// Force the variable-at-a-time leapfrog triejoin (worst-case optimal
    /// for the planner's variable order).
    Wcoj,
}

/// Which key representation the worst-case-optimal path runs over. Purely
/// a runtime gate — both representations are always compiled in, produce
/// identical rows in identical order, and share the instance unchanged
/// (the dense side lazily maintains its dictionary/trie caches inside the
/// instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Repr {
    /// Pick the dense representation (the faster path; generic remains as
    /// the always-available fallback and differential oracle). The
    /// default.
    #[default]
    Auto,
    /// Force dense `u32` dictionary codes over flat trie levels.
    Dense,
    /// Force generic `Value` keys through the sorted-permutation
    /// indirection.
    Generic,
}

/// A query compiled for repeated homomorphism search: variables interned to
/// dense slots, per-atom access plans, and a static selectivity order.
///
/// Compile once (per query, per TGD body, …), then run any number of
/// [`CompiledQuery::search`]es against any instance, with any fixed
/// bindings. Build one with [`CompiledQuery::compile`] or
/// [`CompiledQuery::compile_with_extra`] (the latter also interns variables
/// that occur only in fixed bindings, e.g. ghost answer variables).
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    atoms: Vec<CAtom>,
    /// Slot → original variable.
    vars: Vec<Var>,
    slot_of: HashMap<Var, u32>,
    /// Static atom order seeding the pending list: constant-rich atoms
    /// first (cheap, deterministic tie-break for the dynamic refinement).
    static_order: Vec<usize>,
    /// The worst-case-optimal execution plan (variable order + per-atom
    /// trie layouts), built once at compile time.
    wcoj: WcojPlan,
    /// The planner gate's verdict: run WCOJ under [`Strategy::Auto`]?
    prefer_wcoj: bool,
}

impl CompiledQuery {
    /// Compiles `atoms`, interning their variables in first-occurrence
    /// order.
    pub fn compile(atoms: &[QAtom]) -> CompiledQuery {
        CompiledQuery::compile_with_extra(atoms, [])
    }

    /// Compiles `atoms` and additionally interns `extra` variables (those
    /// that may be fixed or projected without occurring in any atom).
    pub fn compile_with_extra(atoms: &[QAtom], extra: impl IntoIterator<Item = Var>) -> Self {
        let mut slot_of: HashMap<Var, u32> = HashMap::new();
        let mut vars: Vec<Var> = Vec::new();
        let intern = |v: Var, slot_of: &mut HashMap<Var, u32>, vars: &mut Vec<Var>| -> u32 {
            *slot_of.entry(v).or_insert_with(|| {
                vars.push(v);
                (vars.len() - 1) as u32
            })
        };
        let catoms: Vec<CAtom> = atoms
            .iter()
            .map(|a| CAtom {
                predicate: a.predicate,
                terms: a
                    .args
                    .iter()
                    .map(|t| match *t {
                        Term::Var(v) => CTerm::Slot(intern(v, &mut slot_of, &mut vars)),
                        Term::Const(c) => CTerm::Const(c),
                    })
                    .collect(),
            })
            .collect();
        for v in extra {
            intern(v, &mut slot_of, &mut vars);
        }
        let mut static_order: Vec<usize> = (0..catoms.len()).collect();
        static_order.sort_by_key(|&i| {
            let consts = catoms[i]
                .terms
                .iter()
                .filter(|t| matches!(t, CTerm::Const(_)))
                .count();
            (std::cmp::Reverse(consts), i)
        });
        let wcoj = wcoj::build_plan(&catoms, vars.len());
        let prefer_wcoj = wcoj::prefers_wcoj(&catoms, vars.len());
        CompiledQuery {
            atoms: catoms,
            vars,
            slot_of,
            static_order,
            wcoj,
            prefer_wcoj,
        }
    }

    /// Whether the planner gate picks the worst-case-optimal path for this
    /// query under [`Strategy::Auto`]: cyclic (slot-level GYO fails) or a
    /// high-arity multiway join (≥ 3 atoms sharing one variable).
    pub fn prefers_wcoj(&self) -> bool {
        self.prefer_wcoj
    }

    /// Number of slots (distinct interned variables).
    pub fn slot_count(&self) -> usize {
        self.vars.len()
    }

    /// Number of compiled atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// The slot of `v`, if it was interned.
    pub fn slot_of(&self, v: Var) -> Option<usize> {
        self.slot_of.get(&v).map(|&s| s as usize)
    }

    /// Slot → variable mapping (row columns of every [`ValuationTable`]
    /// this plan produces).
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Unifies compiled atom `idx` with a ground atom, returning the slot
    /// bindings it induces, or `None` on a predicate/arity/constant clash
    /// or an inconsistent repeated slot. This is the slot-level analogue of
    /// the chase's pinned-atom unification.
    pub fn unify_atom(
        &self,
        idx: usize,
        ground: &gtgd_data::GroundAtom,
    ) -> Option<Vec<(usize, Value)>> {
        let atom = &self.atoms[idx];
        if ground.predicate != atom.predicate || ground.args.len() != atom.terms.len() {
            return None;
        }
        let mut out: Vec<(usize, Value)> = Vec::with_capacity(atom.terms.len());
        for (t, &gv) in atom.terms.iter().zip(ground.args.iter()) {
            match *t {
                CTerm::Const(c) => {
                    if c != gv {
                        return None;
                    }
                }
                CTerm::Slot(s) => {
                    let s = s as usize;
                    match out.iter().find(|&&(b, _)| b == s) {
                        Some(&(_, prev)) if prev != gv => return None,
                        Some(_) => {}
                        None => out.push((s, gv)),
                    }
                }
            }
        }
        Some(out)
    }

    /// Starts configuring a search of this plan against `target`.
    pub fn search<'a>(&'a self, target: &'a Instance) -> KernelSearch<'a> {
        KernelSearch {
            plan: self,
            target,
            fixed: Vec::new(),
            injective: false,
            allowed: None,
            skip: None,
            strategy: Strategy::Auto,
            repr: Repr::Auto,
        }
    }
}

/// Answers in columnar form: one flat `Vec<Value>` holding all rows, each
/// row one `Value` per slot of the producing [`CompiledQuery`] (in slot
/// order, i.e. [`CompiledQuery::vars`] order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValuationTable {
    vars: Vec<Var>,
    data: Vec<Value>,
    rows: usize,
}

impl ValuationTable {
    /// An empty table over the given columns.
    pub fn new(vars: Vec<Var>) -> ValuationTable {
        ValuationTable {
            vars,
            data: Vec::new(),
            rows: 0,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Row width (number of columns; may be 0 for Boolean queries).
    pub fn width(&self) -> usize {
        self.vars.len()
    }

    /// Column → variable mapping.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// The `i`-th row.
    pub fn row(&self, i: usize) -> &[Value] {
        let w = self.vars.len();
        &self.data[i * w..(i + 1) * w]
    }

    /// Iterates over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[Value]> {
        let w = self.vars.len();
        (0..self.rows).map(move |i| &self.data[i * w..(i + 1) * w])
    }

    /// Appends a row (must match the width).
    pub fn push_row(&mut self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.vars.len());
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Appends all rows of `other` (must have the same columns).
    pub fn append(&mut self, other: &ValuationTable) {
        debug_assert_eq!(self.vars, other.vars);
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
    }

    /// Expands every row into the legacy `HashMap<Var, Value>` shape.
    pub fn to_maps(&self) -> Vec<HashMap<Var, Value>> {
        self.rows()
            .map(|row| self.vars.iter().copied().zip(row.iter().copied()).collect())
            .collect()
    }
}

/// A configured kernel search: a [`CompiledQuery`] plus target instance,
/// fixed slot bindings, and modes. Mirrors the semantics of
/// [`crate::hom::HomSearch`] exactly (the differential suite
/// `tests/differential_kernel.rs` proves set-equality of answers).
pub struct KernelSearch<'a> {
    plan: &'a CompiledQuery,
    target: &'a Instance,
    fixed: Vec<(usize, Value)>,
    injective: bool,
    allowed: Option<&'a HashSet<Value>>,
    skip: Option<usize>,
    strategy: Strategy,
    repr: Repr,
}

/// Mutable search state, reused across the whole enumeration: the flat
/// valuation, the injectivity set, the pending-atom list, a binding trail
/// for rollback, and the reusable output row.
struct State {
    val: Vec<Option<Value>>,
    used: HashSet<Value>,
    pending: Vec<usize>,
    trail: Vec<u32>,
    row: Vec<Value>,
    // Probe accumulators, flushed to the obs counters once per search so
    // the hot recursion never touches an atomic.
    nodes: u64,
    backtracks: u64,
}

impl<'a> KernelSearch<'a> {
    /// Pre-binds slots (later bindings of the same slot must agree or the
    /// search yields nothing).
    pub fn fix_slots(mut self, bindings: impl IntoIterator<Item = (usize, Value)>) -> Self {
        self.fixed.extend(bindings);
        self
    }

    /// Requires injectivity on slots (distinct slots map to distinct
    /// values).
    pub fn injective(mut self) -> Self {
        self.injective = true;
        self
    }

    /// Restricts slot images to `allowed`.
    pub fn restrict_images(mut self, allowed: &'a HashSet<Value>) -> Self {
        self.allowed = Some(allowed);
        self
    }

    /// Excludes one atom from the search (its slots must be pre-bound via
    /// [`KernelSearch::fix_slots`] — the chase uses this to pin a body atom
    /// to a delta atom without recompiling the body).
    pub fn skip_atom(mut self, idx: usize) -> Self {
        self.skip = Some(idx);
        self
    }

    /// Overrides the join algorithm (the default, [`Strategy::Auto`],
    /// defers to the compile-time planner gate). The differential suite
    /// and the benchmarks force both paths; ordinary consumers never call
    /// this.
    pub fn strategy(mut self, s: Strategy) -> Self {
        self.strategy = s;
        self
    }

    /// Overrides the worst-case-optimal path's key representation (the
    /// default, [`Repr::Auto`], runs dense). A no-op for the backtracker.
    /// The dense differential suite forces both sides; ordinary consumers
    /// never call this.
    pub fn repr(mut self, r: Repr) -> Self {
        self.repr = r;
        self
    }

    /// Whether this search runs the worst-case-optimal path.
    pub fn uses_wcoj(&self) -> bool {
        match self.strategy {
            Strategy::Auto => self.plan.prefer_wcoj,
            Strategy::Backtrack => false,
            Strategy::Wcoj => true,
        }
    }

    /// Whether the worst-case-optimal path runs over dense codes.
    fn uses_dense(&self) -> bool {
        !matches!(self.repr, Repr::Generic)
    }

    /// Validates the fixed bindings against the modes; `None` if they are
    /// inconsistent (no answers). Shared by both execution strategies.
    fn init_val(&self) -> Option<(Vec<Option<Value>>, HashSet<Value>)> {
        let n = self.plan.slot_count();
        let mut val: Vec<Option<Value>> = vec![None; n];
        for &(s, v) in &self.fixed {
            match val[s] {
                Some(prev) if prev != v => return None,
                _ => val[s] = Some(v),
            }
        }
        let mut used: HashSet<Value> = HashSet::new();
        if self.injective {
            for v in val.iter().flatten() {
                if !used.insert(*v) {
                    return None;
                }
            }
        }
        if let Some(allowed) = self.allowed {
            if val.iter().flatten().any(|v| !allowed.contains(v)) {
                return None;
            }
        }
        Some((val, used))
    }

    /// Initializes the backtracking search state from the fixed bindings;
    /// `None` if the fixed bindings are inconsistent or violate a mode (no
    /// answers).
    fn init(&self) -> Option<State> {
        let (val, used) = self.init_val()?;
        let n = self.plan.slot_count();
        let pending: Vec<usize> = self
            .plan
            .static_order
            .iter()
            .copied()
            .filter(|&i| Some(i) != self.skip)
            .collect();
        Some(State {
            val,
            used,
            pending,
            trail: Vec::new(),
            row: vec![Value::named("?"); n],
            nodes: 0,
            backtracks: 0,
        })
    }

    /// Candidate atom ids for compiled atom `ai` under the current
    /// valuation, from the most selective available index. Allocation-free:
    /// returns a borrowed index slice.
    fn candidates(&self, ai: usize, val: &[Option<Value>]) -> &'a [usize] {
        let atom = &self.plan.atoms[ai];
        let mut best: Option<&'a [usize]> = None;
        for (pos, t) in atom.terms.iter().enumerate() {
            let bound = match *t {
                CTerm::Const(c) => Some(c),
                CTerm::Slot(s) => val[s as usize],
            };
            if let Some(v) = bound {
                let ids = self.target.atoms_matching(atom.predicate, pos, v);
                if best.is_none_or(|b| ids.len() < b.len()) {
                    best = Some(ids);
                }
            }
        }
        best.unwrap_or_else(|| self.target.atoms_with_pred(atom.predicate))
    }

    /// `candidates(ai, val).len()` without fetching any slice: probes the
    /// instance's selectivity counters only. Used by the dynamic
    /// atom-ordering scan.
    fn candidate_len(&self, ai: usize, val: &[Option<Value>]) -> usize {
        let atom = &self.plan.atoms[ai];
        let mut best: Option<usize> = None;
        for (pos, t) in atom.terms.iter().enumerate() {
            let bound = match *t {
                CTerm::Const(c) => Some(c),
                CTerm::Slot(s) => val[s as usize],
            };
            if let Some(v) = bound {
                let n = self.target.index_count(atom.predicate, pos, v);
                if best.is_none_or(|b| n < b) {
                    best = Some(n);
                }
            }
        }
        best.unwrap_or_else(|| self.target.pred_count(atom.predicate))
    }

    fn search_rec(
        &self,
        st: &mut State,
        f: &mut impl FnMut(&[Value]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        st.nodes += 1;
        if st.pending.is_empty() {
            for (i, v) in st.val.iter().enumerate() {
                st.row[i] = v.expect("every slot is bound at a full match");
            }
            return f(&st.row);
        }
        // Dynamic refinement: the pending atom with the fewest candidates.
        let mut best_idx = 0usize;
        let mut best_len = usize::MAX;
        for (idx, &ai) in st.pending.iter().enumerate() {
            let len = self.candidate_len(ai, &st.val);
            if len < best_len {
                best_len = len;
                best_idx = idx;
            }
        }
        let ai = st.pending.swap_remove(best_idx);
        let atom = &self.plan.atoms[ai];
        let cand = self.candidates(ai, &st.val);
        for &ci in cand {
            let ground = self.target.atom(ci);
            if ground.args.len() != atom.terms.len() {
                continue;
            }
            let mark = st.trail.len();
            let mut ok = true;
            for (t, &gv) in atom.terms.iter().zip(ground.args.iter()) {
                match *t {
                    CTerm::Const(c) => {
                        if c != gv {
                            ok = false;
                            break;
                        }
                    }
                    CTerm::Slot(s) => match st.val[s as usize] {
                        Some(bound) => {
                            if bound != gv {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            if self.injective && st.used.contains(&gv) {
                                ok = false;
                                break;
                            }
                            if let Some(allowed) = self.allowed {
                                if !allowed.contains(&gv) {
                                    ok = false;
                                    break;
                                }
                            }
                            st.val[s as usize] = Some(gv);
                            if self.injective {
                                st.used.insert(gv);
                            }
                            st.trail.push(s);
                        }
                    },
                }
            }
            if ok && self.search_rec(st, f).is_break() {
                return ControlFlow::Break(());
            }
            for i in (mark..st.trail.len()).rev() {
                let s = st.trail[i] as usize;
                let v = st.val[s].take().expect("trail slot was bound");
                if self.injective {
                    st.used.remove(&v);
                }
            }
            st.trail.truncate(mark);
        }
        // Restore the pending list for sibling branches.
        st.backtracks += 1;
        st.pending.push(ai);
        let last = st.pending.len() - 1;
        st.pending.swap(best_idx, last);
        ControlFlow::Continue(())
    }

    /// Visits every homomorphism as a slot-indexed row (the columns are
    /// [`CompiledQuery::vars`]). The row buffer is reused — callers must
    /// copy what they keep. Returns `true` if enumeration stopped early.
    ///
    /// Which join algorithm runs is decided by [`KernelSearch::strategy`]
    /// (default: the compile-time planner gate). Both produce the same
    /// answer *set*; the enumeration order differs.
    pub fn for_each_row(&self, mut f: impl FnMut(&[Value]) -> ControlFlow<()>) -> bool {
        if self.uses_wcoj() {
            return self.wcoj_for_each_row(&mut f);
        }
        let Some(mut st) = self.init() else {
            return false;
        };
        let stopped = self.search_rec(&mut st, &mut f).is_break();
        obs::count(obs::Metric::KernelNodes, st.nodes);
        obs::count(obs::Metric::KernelBacktracks, st.backtracks);
        stopped
    }

    /// The worst-case-optimal path of [`KernelSearch::for_each_row`].
    fn wcoj_for_each_row(&self, f: &mut impl FnMut(&[Value]) -> ControlFlow<()>) -> bool {
        let Some((val, used)) = self.init_val() else {
            return false;
        };
        if self.uses_dense() {
            let snap = DenseSnapshot::take(&self.plan.wcoj, self.target, self.skip);
            let Some(mut run) = DenseRun::new_dense(
                &snap,
                &self.plan.wcoj,
                val,
                used,
                self.injective,
                self.allowed,
                self.skip,
            ) else {
                return false;
            };
            run.run(f).is_break()
        } else {
            let Some(mut run) = GenericRun::new_generic(
                &self.plan.wcoj,
                self.target,
                val,
                used,
                self.injective,
                self.allowed,
                self.skip,
            ) else {
                return false;
            };
            run.run(f).is_break()
        }
    }

    /// Whether any homomorphism exists (no materialization at all).
    pub fn exists(&self) -> bool {
        self.for_each_row(|_| ControlFlow::Break(()))
    }

    /// The first row found, if any.
    pub fn first_row(&self) -> Option<Vec<Value>> {
        let mut out = None;
        self.for_each_row(|row| {
            out = Some(row.to_vec());
            ControlFlow::Break(())
        });
        out
    }

    /// Number of homomorphisms (without materializing them).
    pub fn count(&self) -> usize {
        let mut n = 0usize;
        self.for_each_row(|_| {
            n += 1;
            ControlFlow::Continue(())
        });
        n
    }

    /// All homomorphisms, materialized columnar.
    pub fn table(&self) -> ValuationTable {
        let mut t = ValuationTable::new(self.plan.vars.clone());
        self.for_each_row(|row| {
            t.push_row(row);
            ControlFlow::Continue(())
        });
        t
    }

    /// All homomorphisms, enumerated on a `workers`-wide pool: the most
    /// selective atom's candidate list is split across workers and each
    /// candidate seeds a sub-search that *skips* the split atom (no
    /// recompilation, no rebuilt atom lists). Same row *set* as
    /// [`KernelSearch::table`]; deterministic for any worker count (chunk
    /// results are concatenated in chunk order).
    pub fn par_table(&self, workers: usize) -> ValuationTable {
        if self.uses_wcoj() {
            return self.wcoj_par_table(workers);
        }
        if workers <= 1 || self.plan.atoms.is_empty() || self.skip.is_some() {
            return self.table();
        }
        let Some(base) = self.init() else {
            return ValuationTable::new(self.plan.vars.clone());
        };
        let (split, _) = (0..self.plan.atoms.len())
            .map(|i| (i, self.candidate_len(i, &base.val)))
            .min_by_key(|&(_, n)| n)
            .expect("atoms nonempty");
        let cand = self.candidates(split, &base.val);
        let per_chunk = Pool::with_workers(workers).map_chunks(cand, |_, chunk| {
            let mut out = ValuationTable::new(self.plan.vars.clone());
            for &ci in chunk {
                let Some(seed) = self.plan.unify_atom(split, self.target.atom(ci)) else {
                    continue;
                };
                // Distinct candidates bind the split atom's slots to
                // distinct tuples, so per-candidate row sets are disjoint:
                // concatenation needs no deduplication. Conflicts between
                // the seed and the caller's fixed bindings (or the modes)
                // are rejected by the sub-search's own validation.
                let mut sub = KernelSearch {
                    plan: self.plan,
                    target: self.target,
                    fixed: self.fixed.clone(),
                    injective: self.injective,
                    allowed: self.allowed,
                    skip: Some(split),
                    strategy: Strategy::Backtrack,
                    repr: self.repr,
                };
                sub.fixed.extend(seed);
                sub.for_each_row(|row| {
                    out.push_row(row);
                    ControlFlow::Continue(())
                });
            }
            out
        });
        let mut all = ValuationTable::new(self.plan.vars.clone());
        for t in &per_chunk {
            all.append(t);
        }
        all
    }

    /// Runs a discardable probe with `seeds` appended to the fixed
    /// bindings and reports how the search tree splits below that prefix.
    fn probe_split(&self, seeds: &[(usize, Value)]) -> SplitProbe {
        let mut probe = KernelSearch {
            plan: self.plan,
            target: self.target,
            fixed: self.fixed.clone(),
            injective: self.injective,
            allowed: self.allowed,
            skip: self.skip,
            strategy: Strategy::Wcoj,
            repr: self.repr,
        };
        probe.fixed.extend_from_slice(seeds);
        // A seed conflicting with the modes kills the whole subtree —
        // exactly what the sequential search's per-value checks do.
        let Some((val, used)) = probe.init_val() else {
            return SplitProbe::Dead;
        };
        if probe.uses_dense() {
            let snap = DenseSnapshot::take(&probe.plan.wcoj, probe.target, probe.skip);
            match DenseRun::new_dense(
                &snap,
                &probe.plan.wcoj,
                val,
                used,
                probe.injective,
                probe.allowed,
                probe.skip,
            ) {
                None => SplitProbe::Dead,
                Some(mut run) => run.split_probe(),
            }
        } else {
            match GenericRun::new_generic(
                &probe.plan.wcoj,
                probe.target,
                val,
                used,
                probe.injective,
                probe.allowed,
                probe.skip,
            ) {
                None => SplitProbe::Dead,
                Some(mut run) => run.split_probe(),
            }
        }
    }

    /// The worst-case-optimal variant of [`KernelSearch::par_table`]:
    /// morsel-driven scheduling over the full depth of the variable order.
    ///
    /// Task generation expands prefixes of the search tree breadth-first:
    /// each morsel is a binding prefix (one seed per expanded depth, in
    /// candidate order), and a prefix splits into one child per value of
    /// the leapfrog intersection at its first unbound constrained depth
    /// ([`crate::wcoj::WcojRun::split_probe`]). Expansion stops once
    /// roughly `8 × workers` morsels exist — enough over-partitioning that
    /// idle workers always find a morsel to steal off the shared task
    /// counter ([`Pool::run_tasks`]), wherever in the tree it lives.
    ///
    /// Determinism: each morsel carries its hierarchical path (candidate
    /// ordinals per expanded depth); leaf paths sorted lexicographically
    /// are exactly depth-first order, and distinct prefixes yield disjoint
    /// row sets, so concatenating shard tables in sorted-path order
    /// reproduces the sequential enumeration order *exactly* — for any
    /// worker count and either key representation.
    fn wcoj_par_table(&self, workers: usize) -> ValuationTable {
        let empty = || ValuationTable::new(self.plan.vars.clone());
        if workers <= 1 || self.skip.is_some() || self.plan.wcoj.order.is_empty() {
            return self.table();
        }
        if self.init_val().is_none() {
            return empty();
        }
        struct Morsel {
            /// Candidate ordinals per expanded depth (lex order = DFS
            /// order).
            path: Vec<u32>,
            /// The binding prefix: one `(slot, value)` per expanded depth.
            seeds: Vec<(usize, Value)>,
        }
        let target = workers.saturating_mul(8);
        let mut queue: VecDeque<Morsel> = VecDeque::new();
        queue.push_back(Morsel {
            path: Vec::new(),
            seeds: Vec::new(),
        });
        let mut leaves: Vec<Morsel> = Vec::new();
        while let Some(m) = queue.pop_front() {
            if leaves.len() + queue.len() + 1 >= target {
                leaves.push(m);
                leaves.extend(queue.drain(..));
                break;
            }
            match self.probe_split(&m.seeds) {
                SplitProbe::Dead => {}
                SplitProbe::Exhausted => leaves.push(m),
                SplitProbe::Candidates(slot, values) => {
                    for (i, v) in values.into_iter().enumerate() {
                        let mut path = m.path.clone();
                        path.push(i as u32);
                        let mut seeds = m.seeds.clone();
                        seeds.push((slot, v));
                        queue.push_back(Morsel { path, seeds });
                    }
                }
            }
        }
        if leaves.len() <= 1 {
            // Dead root (no answers) or a single indivisible morsel:
            // nothing to fan out on.
            return self.table();
        }
        leaves.sort_by(|a, b| a.path.cmp(&b.path));
        let spawned = workers.min(leaves.len());
        let stolen = AtomicU64::new(0);
        let busy: Vec<AtomicU64> = (0..spawned).map(|_| AtomicU64::new(0)).collect();
        let timing = obs::enabled();
        let shards = Pool::with_workers(workers).run_tasks(&leaves, |w, i, m| {
            let t0 = timing.then(Instant::now);
            let mut out = ValuationTable::new(self.plan.vars.clone());
            let mut sub = KernelSearch {
                plan: self.plan,
                target: self.target,
                fixed: self.fixed.clone(),
                injective: self.injective,
                allowed: self.allowed,
                skip: self.skip,
                strategy: Strategy::Wcoj,
                repr: self.repr,
            };
            sub.fixed.extend_from_slice(&m.seeds);
            sub.for_each_row(|row| {
                out.push_row(row);
                ControlFlow::Continue(())
            });
            // "Stolen": executed by a different worker than round-robin
            // home assignment would give — i.e. the shared counter
            // re-balanced it onto an idle worker.
            if i % spawned != w {
                stolen.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(t0) = t0 {
                busy[w].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
            out
        });
        obs::count(obs::Metric::WcojMorselsExecuted, leaves.len() as u64);
        obs::count(
            obs::Metric::WcojMorselsStolen,
            stolen.load(Ordering::Relaxed),
        );
        if timing {
            for b in &busy {
                obs::observe(obs::Hist::WcojWorkerBusyNs, b.load(Ordering::Relaxed));
            }
        }
        let mut all = empty();
        for t in &shards {
            all.append(t);
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cq;
    use gtgd_data::GroundAtom;

    fn v(s: &str) -> Value {
        Value::named(s)
    }

    fn path_db(n: usize) -> Instance {
        let names: Vec<String> = (0..=n).map(|i| format!("n{i}")).collect();
        Instance::from_atoms(
            (0..n).map(|i| GroundAtom::named("E", &[names[i].as_str(), names[i + 1].as_str()])),
        )
    }

    #[test]
    fn interning_is_first_occurrence_order() {
        let q = parse_cq("Q() :- E(X,Y), E(Y,Z)").unwrap();
        let plan = CompiledQuery::compile(&q.atoms);
        assert_eq!(plan.slot_count(), 3);
        assert_eq!(plan.vars(), &[Var(0), Var(1), Var(2)]);
        assert_eq!(plan.slot_of(Var(1)), Some(1));
        assert_eq!(plan.slot_of(Var(9)), None);
    }

    #[test]
    fn compile_with_extra_adds_ghost_slots() {
        let q = parse_cq("Q() :- E(X,Y)").unwrap();
        let plan = CompiledQuery::compile_with_extra(&q.atoms, [Var(7)]);
        assert_eq!(plan.slot_count(), 3);
        assert_eq!(plan.slot_of(Var(7)), Some(2));
    }

    #[test]
    fn table_matches_counts() {
        let q = parse_cq("Q() :- E(X,Y), E(Y,Z)").unwrap();
        let db = path_db(4);
        let plan = CompiledQuery::compile(&q.atoms);
        let t = plan.search(&db).table();
        assert_eq!(t.len(), 3); // 3 length-2 walks on a 4-path
        assert_eq!(t.width(), 3);
        assert_eq!(plan.search(&db).count(), 3);
        assert!(plan.search(&db).exists());
        let first = plan.search(&db).first_row().unwrap();
        assert_eq!(first.len(), 3);
    }

    #[test]
    fn fixed_slots_filter() {
        let q = parse_cq("Q(X) :- E(X,Y)").unwrap();
        let db = path_db(2);
        let plan = CompiledQuery::compile(&q.atoms);
        let s = plan.slot_of(q.answer_vars[0]).unwrap();
        assert!(plan.search(&db).fix_slots([(s, v("n0"))]).exists());
        assert!(!plan.search(&db).fix_slots([(s, v("n2"))]).exists());
        // Conflicting bindings of the same slot: no answers.
        assert!(!plan
            .search(&db)
            .fix_slots([(s, v("n0")), (s, v("n1"))])
            .exists());
    }

    #[test]
    fn injective_and_allowed_modes() {
        let db = Instance::from_atoms([GroundAtom::named("E", &["a", "a"])]);
        let q = parse_cq("Q() :- E(X,Y), E(Y,X)").unwrap();
        let plan = CompiledQuery::compile(&q.atoms);
        assert!(plan.search(&db).exists());
        assert!(!plan.search(&db).injective().exists());
        let db2 = path_db(3);
        let plan2 = CompiledQuery::compile(&parse_cq("Q() :- E(X,Y)").unwrap().atoms);
        let allowed: HashSet<Value> = [v("n0"), v("n1")].into_iter().collect();
        assert_eq!(plan2.search(&db2).restrict_images(&allowed).count(), 1);
    }

    #[test]
    fn skip_atom_with_pinned_bindings() {
        let q = parse_cq("Q() :- E(X,Y), E(Y,Z)").unwrap();
        let db = path_db(3);
        let plan = CompiledQuery::compile(&q.atoms);
        // Pin the first atom to E(n0,n1): exactly one extension remains.
        let seed = plan
            .unify_atom(0, &GroundAtom::named("E", &["n0", "n1"]))
            .unwrap();
        let t = plan.search(&db).fix_slots(seed).skip_atom(0).table();
        assert_eq!(t.len(), 1);
        let z = plan.slot_of(Var(2)).unwrap();
        assert_eq!(t.row(0)[z], v("n2"));
    }

    #[test]
    fn unify_atom_rejects_clashes() {
        let q = parse_cq("Q() :- E(X,X), F(n0,Y)").unwrap();
        let plan = CompiledQuery::compile(&q.atoms);
        // Repeated slot must unify consistently.
        assert!(plan
            .unify_atom(0, &GroundAtom::named("E", &["a", "b"]))
            .is_none());
        assert!(plan
            .unify_atom(0, &GroundAtom::named("E", &["a", "a"]))
            .is_some());
        // Predicate, arity, and constant clashes.
        assert!(plan
            .unify_atom(0, &GroundAtom::named("F", &["a", "a"]))
            .is_none());
        assert!(plan
            .unify_atom(0, &GroundAtom::named("E", &["a"]))
            .is_none());
        assert!(plan
            .unify_atom(1, &GroundAtom::named("F", &["n1", "b"]))
            .is_none());
        assert!(plan
            .unify_atom(1, &GroundAtom::named("F", &["n0", "b"]))
            .is_some());
    }

    #[test]
    fn par_table_equals_table_as_set() {
        let db = path_db(6);
        for src in [
            "Q() :- E(X,Y)",
            "Q() :- E(X,Y), E(Y,Z)",
            "Q() :- E(X,X)",
            "Q() :- E(n0,Y)",
        ] {
            let q = parse_cq(src).unwrap();
            let plan = CompiledQuery::compile(&q.atoms);
            let mut seq: Vec<Vec<Value>> = plan
                .search(&db)
                .table()
                .rows()
                .map(|r| r.to_vec())
                .collect();
            seq.sort();
            for w in [1usize, 2, 4, 7] {
                let mut par: Vec<Vec<Value>> = plan
                    .search(&db)
                    .par_table(w)
                    .rows()
                    .map(|r| r.to_vec())
                    .collect();
                par.sort();
                assert_eq!(par, seq, "{src} at {w} workers");
            }
        }
    }

    #[test]
    fn boolean_width_zero_table() {
        let db = Instance::from_atoms([GroundAtom::named("Goal", &[])]);
        let q = parse_cq("Q() :- Goal()").unwrap();
        let plan = CompiledQuery::compile(&q.atoms);
        let t = plan.search(&db).table();
        assert_eq!(t.width(), 0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.row(0), &[] as &[Value]);
    }

    #[test]
    fn empty_query_yields_one_empty_row() {
        let db = path_db(2);
        let plan = CompiledQuery::compile(&[]);
        assert_eq!(plan.search(&db).count(), 1);
        assert_eq!(plan.search(&db).par_table(4).len(), 1);
    }

    #[test]
    fn to_maps_round_trip() {
        let q = parse_cq("Q() :- E(X,Y)").unwrap();
        let db = path_db(2);
        let plan = CompiledQuery::compile(&q.atoms);
        let maps = plan.search(&db).table().to_maps();
        assert_eq!(maps.len(), 2);
        assert!(maps.iter().all(|m| m.len() == 2));
    }
}
