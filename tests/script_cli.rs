//! End-to-end checks of the script engine and the shipped sample scripts.

use gtgd::script::{eval_script, parse_script, Mode};

#[test]
fn shipped_hr_script_runs_open_world() {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/scripts/hr.gtgd"
    ))
    .expect("sample script present");
    let out = eval_script(&src).expect("script evaluates");
    assert_eq!(out.mode, Mode::Open);
    assert!(out.exact);
    // The ontology guarantees both employees a managed department.
    assert_eq!(out.answers, vec!["ann", "bob"]);
}

#[test]
fn shipped_inventory_script_runs_closed_world() {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/scripts/inventory.gtgd"
    ))
    .expect("sample script present");
    let script = parse_script(&src).unwrap();
    assert_eq!(script.mode, Mode::Closed);
    let out = eval_script(&src).unwrap();
    assert_eq!(out.answers, vec!["gadget", "widget"]);
}

#[test]
fn closed_world_script_rejects_violating_facts() {
    let src = "mode closed\n\
               fact Stock(widget, aisle3).\n\
               tgd Stock(Item, Loc) -> Location(Loc).\n\
               query Q(Item) :- Stock(Item, Loc).\n";
    assert!(eval_script(src).is_err(), "missing Location(aisle3)");
}

#[test]
fn open_world_script_with_dl_style_hierarchy() {
    let src = "fact Cat(tom).\n\
               tgd Cat(X) -> Animal(X).\n\
               tgd Animal(X) -> Eats(X, F), Food(F).\n\
               query Q(X) :- Eats(X, F), Food(F).\n";
    let out = eval_script(src).unwrap();
    assert!(out.exact);
    assert_eq!(out.answers, vec!["tom"]);
}

#[test]
fn facts_loader_matches_script_facts() {
    // The data-crate bulk loader and the script engine agree on syntax.
    let facts = gtgd::data::parse_facts("Emp(ann). WorksIn(ann, sales)").unwrap();
    assert_eq!(facts.len(), 2);
    let rendered = gtgd::data::render_facts(&facts);
    let reparsed = gtgd::data::parse_facts(&rendered).unwrap();
    assert_eq!(facts, reparsed);
}
