#![warn(missing_docs)]

//! Tuple-generating dependencies and the chase (Section 2 of the paper),
//! plus the guarded-specific machinery the paper's algorithms rely on:
//! Σ-types and ground saturation (`chase↓`, `complete`, `type_{D,Σ}`),
//! the typed (level-bounded, type-closed) chase behind the FPT algorithm of
//! Prop 3.3(3), guarded unraveling (Appendix D.1), and finite universal
//! models for terminating fragments (the realization of finite witnesses we
//! use in place of the paper's GNFO construction — see DESIGN.md §3).
//!
//! ```
//! use gtgd_chase::{chase, parse_tgds, ChaseBudget};
//! use gtgd_data::{GroundAtom, Instance};
//!
//! let sigma = parse_tgds("Emp(X) -> WorksIn(X,D). WorksIn(X,D) -> Dept(D)")?;
//! let db = Instance::from_atoms([GroundAtom::named("Emp", &["ann"])]);
//! let result = chase(&db, &sigma, &ChaseBudget::unbounded());
//! assert!(result.complete);
//! assert_eq!(result.instance.len(), 3); // Emp, WorksIn(ann, ⊥), Dept(⊥)
//! assert_eq!(result.max_level, 2);
//! # Ok::<(), gtgd_query::ParseError>(())
//! ```

pub mod acyclicity;
pub mod cert;
pub mod dl;
pub mod engine;
pub mod linearize;
pub mod maintain;
pub mod par_engine;
pub(crate) mod plan;
pub mod restricted;
pub mod rewrite;
pub mod runner;
pub mod tgd;
pub mod typed_chase;
pub mod types;
pub mod unravel;
pub mod witness;

pub use acyclicity::is_weakly_acyclic;
pub use cert::{certificates_to_json, Certificate, CertificateStore};
pub use dl::{
    abox_consistent, parse_dl_ontology, parse_tbox, tbox_to_tgds, try_tbox_to_tgds, Axiom, Concept,
    FragmentError, Role,
};
pub use engine::{chase, ChaseBudget, ChaseResult};
pub use linearize::{linearize, Linearization};
pub use maintain::{FiringExport, MaintainExport, MaintainedInstance, MaintenanceReport};
pub use par_engine::{par_chase, par_ground_saturation};
pub use restricted::{restricted_chase, RestrictedChaseResult};
pub use rewrite::linear_rewrite;
pub use runner::{ChaseOutcome, ChaseRunner, ChaseVariant};
pub use tgd::{parse_tgd, parse_tgds, satisfies, satisfies_all, Tgd, TgdClass};
pub use typed_chase::{typed_chase, typed_chase_with, DepthPolicy, TypedChaseResult};
pub use types::{complete_ground, ground_saturation, type_of_atom, CanonType, Saturator};
pub use unravel::{guarded_unraveling, k_unraveling};
pub use witness::{finite_witness, WitnessError};
