//! Incremental materialization: a chased instance maintained under fact
//! inserts and retracts without re-chasing from scratch.
//!
//! [`MaintainedInstance`] keeps the **oblivious** chase fixpoint of a base
//! database live across updates:
//!
//! * [`insert`](MaintainedInstance::insert) runs a *delta chase*: the FIFO
//!   trigger frontier (the restricted engine's discovery machinery) is
//!   seeded from the inserted atoms only — never the whole instance — and
//!   the warm `TriggerPlan` caches are reused,
//!   so a single-fact insert costs a handful of pinned index probes
//!   instead of a full re-chase. A *persistent* fired set (keyed like the
//!   oblivious engine's, by `(TGD, trigger key)`) carries the oblivious
//!   once-per-trigger discipline across updates.
//! * [`retract`](MaintainedInstance::retract) runs **DRed**
//!   (delete-and-re-derive) over the per-firing dependency index recorded
//!   at insert time: first *over-delete* everything transitively derived
//!   through a retracted atom, then *re-derive* — rescue the over-deleted
//!   atoms that still have an alive alternative support (or are surviving
//!   base facts), physically remove the rest, and re-run the delta chase
//!   from the rescued atoms so the purged triggers whose bodies survived
//!   can re-fire.
//!
//! Why oblivious semantics: the oblivious chase fires every trigger
//! exactly once, so its fixpoint is order-independent up to null renaming
//! — incrementally reaching it and re-chasing from scratch agree up to
//! isomorphism, which is this module's differential contract
//! (`tests/differential_maintenance.rs`). The restricted chase offers no
//! such contract: whether a trigger fires depends on what happened to be
//! derived first, so an incremental run and a from-scratch run can
//! legitimately disagree (insert `R(a,b)` after chasing
//! `P(x) → ∃y R(x,y)` and the incremental instance keeps the null the
//! from-scratch run never mints).
//!
//! Support counting alone (no re-derive phase) is *not* sound here:
//! a self-supporting cycle — `A(x) → B(x)`, `B(x) → A(x)` with base
//! `A(a)` — keeps every count positive after `A(a)` is retracted even
//! though nothing is derivable any more. DRed's over-delete phase cuts
//! the whole cycle first; re-derivation only rescues atoms reachable from
//! *surviving* facts. `tests/maintenance_mutants.rs` pins these cases.

use crate::engine::ChaseBudget;
use crate::plan::TriggerPlan;
use crate::tgd::Tgd;
use gtgd_data::{obs, GroundAtom, Instance, Value};
use std::collections::{HashMap, HashSet, VecDeque};
use std::ops::ControlFlow;

/// What one maintenance operation did. Every count is exact (not a
/// high-water mark), which is what lets the mutation-grade tests assert
/// per-phase outcomes instead of end states only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Triggers fired by this operation's delta chase (insert) or
    /// re-derivation chase (retract).
    pub triggers_fired: usize,
    /// Atoms the operation materialized (genuinely new to the instance).
    pub atoms_added: usize,
    /// Retract only: atoms placed in the DRed over-delete set — every atom
    /// reachable through a retracted fact's derivations, before rescue.
    pub atoms_overdeleted: usize,
    /// Retract only: over-deleted atoms rescued by an alive alternative
    /// support (or surviving base-fact status) instead of being removed.
    pub atoms_rederived: usize,
    /// Retract only: atoms physically removed from the instance.
    pub atoms_removed: usize,
}

/// One *alive* firing in portable form, as persisted by snapshots: the
/// `(TGD index, trigger key)` pair plus the produced head atoms. The
/// firing's body atoms are **not** stored — the key is the full body
/// valuation in ascending-variable order, so the body is reconstructed at
/// load via `TriggerPlan::row_from_key` +
/// `ground_body`. Dead (tombstoned) firings are compacted away at export:
/// they exist only to keep in-memory ids stable, which a rebuild
/// renumbers anyway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiringExport {
    /// TGD index in the rule set.
    pub tgd: usize,
    /// The oblivious trigger key (body-variable images, ascending
    /// variable order).
    pub key: Vec<Value>,
    /// The head atoms the firing produced.
    pub products: Vec<GroundAtom>,
}

/// Portable snapshot of a [`MaintainedInstance`]'s chase state — everything
/// *except* the instance itself (persisted separately as atoms + index
/// sections) and the TGDs (the caller owns the rule set and must supply the
/// same rules, in the same order, at import).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaintainExport {
    /// Base (user-asserted) facts, in instance insertion order.
    pub base: Vec<GroundAtom>,
    /// Alive firings in firing-id order.
    pub firings: Vec<FiringExport>,
    /// Whether the maintained instance is the true fixpoint.
    pub complete: bool,
    /// The atom cap of the maintenance budget, if any.
    pub max_atoms: Option<usize>,
}

/// One recorded trigger firing: the dependency-graph edge set DRed walks.
/// Records stay in place when killed (`alive = false`) so firing ids in
/// the `supports`/`uses` adjacency lists remain stable.
#[derive(Debug, Clone)]
struct Firing {
    /// TGD index (pairs with `key` as the fired-set entry to purge).
    tgd: usize,
    /// The oblivious trigger key (body-variable images).
    key: Vec<Value>,
    /// The head atoms the firing produced.
    products: Vec<GroundAtom>,
    /// Cleared when a body atom is over-deleted.
    alive: bool,
}

/// A live oblivious-chase fixpoint over a mutable base database. Built by
/// [`crate::ChaseRunner::maintain`]; updated by
/// [`insert`](MaintainedInstance::insert) and
/// [`retract`](MaintainedInstance::retract); read through
/// [`instance`](MaintainedInstance::instance). Compiled/prepared queries
/// evaluate against the instance reference directly — and take their
/// sorted/dense index snapshots per evaluation — so they stay valid
/// across any number of maintenance operations.
#[derive(Debug, Clone)]
pub struct MaintainedInstance {
    plans: Vec<TriggerPlan>,
    budget: ChaseBudget,
    instance: Instance,
    /// User-asserted facts. A base fact is never deleted by over-delete
    /// propagation alone — only by being explicitly retracted.
    base: HashSet<GroundAtom>,
    /// The oblivious once-per-trigger discipline, persisted across
    /// updates: `(TGD index, trigger key)` of every firing not yet purged
    /// by retraction.
    fired: HashSet<(usize, Vec<Value>)>,
    /// All recorded firings; dead ones stay as tombstones so ids in the
    /// adjacency lists below never dangle.
    firings: Vec<Firing>,
    /// atom → ids of firings producing it (its supports).
    supports: HashMap<GroundAtom, Vec<usize>>,
    /// atom → ids of firings using it in their body.
    uses: HashMap<GroundAtom, Vec<usize>>,
    complete: bool,
}

impl MaintainedInstance {
    /// Chases `db` to its oblivious fixpoint (within `budget`) and records
    /// the full dependency index. `budget` may cap atoms; level caps are
    /// rejected — an atom's level is not stable under base updates, so a
    /// level-capped prefix cannot be maintained.
    ///
    /// # Panics
    /// If `budget.max_level` is set.
    pub fn new(db: &Instance, tgds: &[Tgd], budget: ChaseBudget) -> MaintainedInstance {
        assert!(
            budget.max_level.is_none(),
            "MaintainedInstance maintains a fixpoint; level-capped prefixes are not maintainable"
        );
        let mut m = MaintainedInstance {
            plans: TriggerPlan::compile_all(tgds),
            budget,
            instance: Instance::new(),
            base: HashSet::new(),
            fired: HashSet::new(),
            firings: Vec::new(),
            supports: HashMap::new(),
            uses: HashMap::new(),
            complete: true,
        };
        m.insert(db.iter().cloned());
        m
    }

    /// The maintained instance (the base facts plus everything derived).
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Whether `atom` is currently a base (user-asserted) fact.
    pub fn is_base(&self, atom: &GroundAtom) -> bool {
        self.base.contains(atom)
    }

    /// Whether the maintained instance is the true fixpoint, as opposed to
    /// an atom-budget-truncated prefix. Sticky: once an update hits the
    /// cap the flag stays false (a truncation is not repairable
    /// incrementally).
    pub fn complete(&self) -> bool {
        self.complete
    }

    /// Asserts base facts and chases only their consequences: triggers are
    /// discovered by pinning each cached body plan to the delta, exactly
    /// like one round of the frontier engine, and the persistent fired set
    /// keeps every previously fired trigger from firing again.
    pub fn insert(&mut self, atoms: impl IntoIterator<Item = GroundAtom>) -> MaintenanceReport {
        let _span = obs::span("maint.insert");
        let mut delta: Vec<GroundAtom> = Vec::new();
        for a in atoms {
            self.base.insert(a.clone());
            if self.instance.insert(a.clone()) {
                delta.push(a);
            }
        }
        let mut report = MaintenanceReport {
            atoms_added: delta.len(),
            ..MaintenanceReport::default()
        };
        self.delta_chase(&delta, &mut report);
        report
    }

    /// Retracts base facts via DRed. Atoms not currently in the base are
    /// ignored (retracting a derived atom is meaningless — it would be
    /// re-derived immediately; retract its supports instead).
    pub fn retract(&mut self, atoms: impl IntoIterator<Item = GroundAtom>) -> MaintenanceReport {
        let _span = obs::span("maint.retract");
        let mut report = MaintenanceReport::default();
        // Phase 0: drop base status. Only atoms that actually were base
        // facts seed the over-delete.
        let mut worklist: VecDeque<GroundAtom> =
            atoms.into_iter().filter(|a| self.base.remove(a)).collect();
        if worklist.is_empty() {
            return report;
        }
        // Phase 1 — over-delete: everything transitively derived through a
        // deleted atom. Killing a firing with a dead body atom
        // conservatively dooms its products; rescue comes later.
        // `over_list` mirrors `over` in first-insertion order so every
        // later pass over the set is deterministic.
        let mut over: HashSet<GroundAtom> = HashSet::new();
        let mut over_list: Vec<GroundAtom> = Vec::new();
        let mut dead_firings: Vec<usize> = Vec::new();
        while let Some(a) = worklist.pop_front() {
            if !over.insert(a.clone()) {
                continue;
            }
            over_list.push(a.clone());
            for &fid in self.uses.get(&a).into_iter().flatten() {
                if !self.firings[fid].alive {
                    continue;
                }
                self.firings[fid].alive = false;
                dead_firings.push(fid);
                for p in &self.firings[fid].products {
                    if !over.contains(p) {
                        worklist.push_back(p.clone());
                    }
                }
            }
        }
        report.atoms_overdeleted = over.len();
        obs::count(obs::Metric::MaintAtomsOverdeleted, over.len() as u64);
        // Phase 2 — re-derive: an over-deleted atom survives if it is
        // still a base fact or some alive firing still produces it; the
        // rest is physically removed.
        let rescued: Vec<GroundAtom> = over_list
            .iter()
            .filter(|a| self.base.contains(*a) || self.any_alive(self.supports.get(*a)))
            .cloned()
            .collect();
        report.atoms_rederived = rescued.len();
        obs::count(obs::Metric::MaintAtomsRederived, rescued.len() as u64);
        let rescued_set: HashSet<&GroundAtom> = rescued.iter().collect();
        let doomed: Vec<GroundAtom> = over_list
            .iter()
            .filter(|a| !rescued_set.contains(*a))
            .cloned()
            .collect();
        report.atoms_removed = self.instance.retract_atoms(&doomed);
        // Purge dead firings from the fired set so their triggers can
        // re-fire (with fresh nulls — correct up to isomorphism) if their
        // bodies still hold. The tombstoned records keep ids stable; the
        // adjacency lists are filtered by `alive` at every read.
        for &fid in &dead_firings {
            let f = &self.firings[fid];
            self.fired.remove(&(f.tgd, f.key.clone()));
        }
        // Re-run the delta chase from the rescued atoms: every purged
        // trigger whose body survived has a rescued body atom, so pinning
        // on the rescue set rediscovers exactly the derivations DRed cut
        // too eagerly.
        self.delta_chase(&rescued, &mut report);
        report
    }

    /// Exports the chase state in portable form: base facts in insertion
    /// order, alive firings only (tombstones compacted), the completeness
    /// flag, and the budget's atom cap. Pair with the instance's own
    /// export to persist the whole maintained fixpoint.
    pub fn export_state(&self) -> MaintainExport {
        MaintainExport {
            base: self
                .instance
                .iter()
                .filter(|a| self.base.contains(*a))
                .cloned()
                .collect(),
            firings: self
                .firings
                .iter()
                .filter(|f| f.alive)
                .map(|f| FiringExport {
                    tgd: f.tgd,
                    key: f.key.clone(),
                    products: f.products.clone(),
                })
                .collect(),
            complete: self.complete,
            max_atoms: self.budget.max_atoms,
        }
    }

    /// Reassembles a maintained instance from an exported chase state and
    /// an already-rebuilt `instance` (atoms restored in insertion order,
    /// index sections optionally installed). `tgds` must be the rule set
    /// the export was created under, in the same order — firing records
    /// name rules by index.
    ///
    /// The dependency index (`supports`/`uses`) is rebuilt from the
    /// exported firings: each firing's body row is reconstructed from its
    /// trigger key (`TriggerPlan::row_from_key`), and its
    /// body and products are checked against the instance — any
    /// inconsistency (dangling atom, out-of-range rule index, key arity
    /// mismatch) fails the whole import with a description rather than
    /// producing a silently wrong fixpoint. **No chase runs**: import cost
    /// is hashing the firing records, which is what makes snapshot load
    /// re-chase-free.
    pub fn from_parts(
        tgds: &[Tgd],
        export: &MaintainExport,
        instance: Instance,
    ) -> Result<MaintainedInstance, String> {
        let plans = TriggerPlan::compile_all(tgds);
        let mut m = MaintainedInstance {
            plans,
            budget: ChaseBudget {
                max_level: None,
                max_atoms: export.max_atoms,
            },
            instance,
            base: HashSet::new(),
            fired: HashSet::new(),
            firings: Vec::with_capacity(export.firings.len()),
            supports: HashMap::new(),
            uses: HashMap::new(),
            complete: export.complete,
        };
        for a in &export.base {
            if !m.instance.contains(a) {
                return Err(format!("base fact {a} missing from the instance"));
            }
            m.base.insert(a.clone());
        }
        for f in &export.firings {
            let Some(plan) = m.plans.get(f.tgd) else {
                return Err(format!(
                    "firing names rule {} but only {} rules were supplied",
                    f.tgd,
                    m.plans.len()
                ));
            };
            if f.key.len() != plan.key_slots.len() {
                return Err(format!(
                    "firing of rule {} has a {}-ary key, expected {}",
                    f.tgd,
                    f.key.len(),
                    plan.key_slots.len()
                ));
            }
            if !m.fired.insert((f.tgd, f.key.clone())) {
                return Err(format!("duplicate firing of rule {}", f.tgd));
            }
            let row = plan.row_from_key(&f.key);
            let fid = m.firings.len();
            for b in plan.ground_body(&row) {
                if !m.instance.contains(&b) {
                    return Err(format!("firing body atom {b} missing from the instance"));
                }
                m.uses.entry(b).or_default().push(fid);
            }
            for p in &f.products {
                if !m.instance.contains(p) {
                    return Err(format!("firing product {p} missing from the instance"));
                }
                m.supports.entry(p.clone()).or_default().push(fid);
            }
            m.firings.push(Firing {
                tgd: f.tgd,
                key: f.key.clone(),
                products: f.products.clone(),
                alive: true,
            });
        }
        // Every non-base atom must have a support: otherwise a later
        // retraction would "rescue" atoms that nothing derives.
        for a in m.instance.iter() {
            if !m.base.contains(a) && !m.supports.contains_key(a) {
                return Err(format!(
                    "atom {a} is neither base nor derived by any firing"
                ));
            }
        }
        Ok(m)
    }

    /// Whether any firing in `fids` is alive.
    fn any_alive(&self, fids: Option<&Vec<usize>>) -> bool {
        fids.into_iter()
            .flatten()
            .any(|&fid| self.firings[fid].alive)
    }

    /// The shared frontier engine: discovers and fires every not-yet-fired
    /// trigger reachable from `delta`, recording each firing into the
    /// dependency index. Oblivious semantics — no satisfaction check; the
    /// fired set alone decides.
    fn delta_chase(&mut self, delta: &[GroundAtom], report: &mut MaintenanceReport) {
        // (TGD index, body row) frontier with local discovery dedup, as in
        // the restricted engine; the persistent `fired` set additionally
        // dedups across updates at pop time.
        let mut queue: VecDeque<(usize, Vec<Value>)> = VecDeque::new();
        let mut seen: HashSet<(usize, Vec<Value>)> = HashSet::new();
        // Empty-body TGDs have exactly one (empty-row) trigger; the fired
        // set keeps them to one firing ever.
        for (ti, plan) in self.plans.iter().enumerate() {
            if plan.body_atoms.is_empty() && seen.insert((ti, Vec::new())) {
                queue.push_back((ti, Vec::new()));
            }
        }
        for d in delta {
            Self::discover(&self.plans, d, &self.instance, &mut queue, &mut seen);
        }
        let mut products: Vec<GroundAtom> = Vec::new();
        while let Some((ti, row)) = queue.pop_front() {
            if self
                .budget
                .max_atoms
                .is_some_and(|max| self.instance.len() >= max)
            {
                self.complete = false;
                break;
            }
            let plan = &self.plans[ti];
            let key = plan.trigger_key(&row);
            if !self.fired.insert((ti, key.clone())) {
                continue;
            }
            products.clear();
            plan.fire_row(&row, &mut products);
            report.triggers_fired += 1;
            obs::count(obs::Metric::MaintTriggersFired, 1);
            let fid = self.firings.len();
            let body = plan.ground_body(&row);
            for b in &body {
                self.uses.entry(b.clone()).or_default().push(fid);
            }
            for p in &products {
                self.supports.entry(p.clone()).or_default().push(fid);
            }
            self.firings.push(Firing {
                tgd: ti,
                key,
                products: products.clone(),
                alive: true,
            });
            let delta_start = self.instance.len();
            for p in &products {
                if self.instance.insert(p.clone()) {
                    report.atoms_added += 1;
                }
            }
            for i in delta_start..self.instance.len() {
                let d = self.instance.atom(i).clone();
                Self::discover(&self.plans, &d, &self.instance, &mut queue, &mut seen);
            }
        }
    }

    /// Enqueues every trigger whose body uses `d`, by pinning each body
    /// atom of each cached plan to it (the frontier engine's discovery
    /// step, verbatim).
    fn discover(
        plans: &[TriggerPlan],
        d: &GroundAtom,
        instance: &Instance,
        queue: &mut VecDeque<(usize, Vec<Value>)>,
        seen: &mut HashSet<(usize, Vec<Value>)>,
    ) {
        for (ti, plan) in plans.iter().enumerate() {
            for pin in 0..plan.body_atoms.len() {
                let Some(seed) = plan.body.unify_atom(pin, d) else {
                    continue;
                };
                plan.body
                    .search(instance)
                    .fix_slots(seed)
                    .skip_atom(pin)
                    .for_each_row(|row| {
                        if seen.insert((ti, row.to_vec())) {
                            queue.push_back((ti, row.to_vec()));
                        }
                        ControlFlow::Continue(())
                    });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::chase;
    use crate::tgd::parse_tgds;
    use gtgd_query::instance_isomorphic;

    fn db(atoms: &[(&str, &[&str])]) -> Instance {
        Instance::from_atoms(atoms.iter().map(|(p, args)| GroundAtom::named(p, args)))
    }

    #[test]
    fn initial_build_matches_from_scratch_chase() {
        let tgds = parse_tgds("A(X) -> B(X). B(X) -> R(X,Y). R(X,Y), A(X) -> C(Y)").unwrap();
        let d = db(&[("A", &["a"]), ("A", &["b"])]);
        let m = MaintainedInstance::new(&d, &tgds, ChaseBudget::unbounded());
        let scratch = chase(&d, &tgds, &ChaseBudget::unbounded());
        assert!(m.complete());
        assert!(instance_isomorphic(m.instance(), &scratch.instance));
    }

    #[test]
    fn insert_extends_to_the_rechased_fixpoint() {
        let tgds = parse_tgds("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
        let d = db(&[("E", &["a", "b"]), ("E", &["b", "c"])]);
        let mut m = MaintainedInstance::new(&d, &tgds, ChaseBudget::unbounded());
        let rep = m.insert([GroundAtom::named("E", &["c", "d"])]);
        assert!(rep.triggers_fired > 0);
        let mut grown = d.clone();
        grown.insert(GroundAtom::named("E", &["c", "d"]));
        let scratch = chase(&grown, &tgds, &ChaseBudget::unbounded());
        assert!(instance_isomorphic(m.instance(), &scratch.instance));
    }

    #[test]
    fn duplicate_insert_is_a_noop() {
        let tgds = parse_tgds("A(X) -> B(X)").unwrap();
        let d = db(&[("A", &["a"])]);
        let mut m = MaintainedInstance::new(&d, &tgds, ChaseBudget::unbounded());
        let rep = m.insert([GroundAtom::named("A", &["a"])]);
        assert_eq!(rep, MaintenanceReport::default());
        assert_eq!(m.instance().len(), 2);
    }

    #[test]
    fn retract_removes_the_derivation_cone() {
        let tgds = parse_tgds("A(X) -> B(X). B(X) -> C(X)").unwrap();
        let d = db(&[("A", &["a"]), ("A", &["b"])]);
        let mut m = MaintainedInstance::new(&d, &tgds, ChaseBudget::unbounded());
        let rep = m.retract([GroundAtom::named("A", &["a"])]);
        assert_eq!(rep.atoms_overdeleted, 3); // A(a), B(a), C(a)
        assert_eq!(rep.atoms_rederived, 0);
        assert_eq!(rep.atoms_removed, 3);
        let rest = db(&[("A", &["b"])]);
        let scratch = chase(&rest, &tgds, &ChaseBudget::unbounded());
        assert!(instance_isomorphic(m.instance(), &scratch.instance));
    }

    #[test]
    fn retract_of_an_unknown_or_derived_atom_is_a_noop() {
        let tgds = parse_tgds("A(X) -> B(X)").unwrap();
        let d = db(&[("A", &["a"])]);
        let mut m = MaintainedInstance::new(&d, &tgds, ChaseBudget::unbounded());
        // B(a) is derived, not base; Z(q) is absent entirely.
        let rep = m.retract([
            GroundAtom::named("B", &["a"]),
            GroundAtom::named("Z", &["q"]),
        ]);
        assert_eq!(rep, MaintenanceReport::default());
        assert_eq!(m.instance().len(), 2);
    }

    #[test]
    fn retract_then_reinsert_roundtrips_up_to_isomorphism() {
        let tgds = parse_tgds("Emp(X) -> WorksIn(X,D). WorksIn(X,D) -> Dept(D)").unwrap();
        let d = db(&[("Emp", &["ann"]), ("Emp", &["bob"])]);
        let mut m = MaintainedInstance::new(&d, &tgds, ChaseBudget::unbounded());
        m.retract([GroundAtom::named("Emp", &["ann"])]);
        m.insert([GroundAtom::named("Emp", &["ann"])]);
        let scratch = chase(&d, &tgds, &ChaseBudget::unbounded());
        assert!(instance_isomorphic(m.instance(), &scratch.instance));
    }

    #[test]
    fn base_fact_that_is_also_derived_survives_retraction_of_its_support() {
        // B(a) is both asserted and derived from A(a): retracting A(a)
        // over-deletes B(a) but base status rescues it.
        let tgds = parse_tgds("A(X) -> B(X)").unwrap();
        let d = db(&[("A", &["a"]), ("B", &["a"])]);
        let mut m = MaintainedInstance::new(&d, &tgds, ChaseBudget::unbounded());
        let rep = m.retract([GroundAtom::named("A", &["a"])]);
        assert_eq!(rep.atoms_overdeleted, 2);
        assert_eq!(rep.atoms_rederived, 1);
        assert_eq!(rep.atoms_removed, 1);
        assert!(m.instance().contains(&GroundAtom::named("B", &["a"])));
        assert!(!m.instance().contains(&GroundAtom::named("A", &["a"])));
    }

    #[test]
    fn export_from_parts_round_trips_and_keeps_maintaining() {
        let tgds =
            parse_tgds("Emp(X) -> WorksIn(X,D). WorksIn(X,D) -> Dept(D). Dept(D) -> Audited(D)")
                .unwrap();
        let d = db(&[("Emp", &["ann"]), ("Emp", &["bob"])]);
        let mut m = MaintainedInstance::new(&d, &tgds, ChaseBudget::unbounded());
        let export = m.export_state();
        assert!(export.complete);
        assert_eq!(export.base.len(), 2);
        assert_eq!(export.firings.len(), 6); // 3 rules × 2 employees

        // Rebuild the instance the way a snapshot load does: re-insert the
        // atoms in insertion order.
        let rebuilt = Instance::from_atoms(m.instance().iter().cloned());
        let mut r = MaintainedInstance::from_parts(&tgds, &export, rebuilt).unwrap();
        assert!(r.complete());
        assert_eq!(r.instance(), m.instance());

        // The restored fixpoint keeps maintaining: the same mutations on
        // both sides stay isomorphic (null labels differ — the delta
        // chases mint their own).
        for mi in [&mut m, &mut r] {
            mi.retract([GroundAtom::named("Emp", &["ann"])]);
            mi.insert([GroundAtom::named("Emp", &["carol"])]);
        }
        assert!(instance_isomorphic(m.instance(), r.instance()));
        // And neither re-fires persisted triggers: inserting an existing
        // base fact is still a no-op after the round trip.
        assert_eq!(
            r.insert([GroundAtom::named("Emp", &["bob"])]),
            MaintenanceReport::default()
        );
    }

    #[test]
    fn from_parts_rejects_inconsistent_exports() {
        let tgds = parse_tgds("A(X) -> B(X)").unwrap();
        let m = MaintainedInstance::new(&db(&[("A", &["a"])]), &tgds, ChaseBudget::unbounded());
        let good = m.export_state();
        let rebuilt = || Instance::from_atoms(m.instance().iter().cloned());

        let mut missing_base = good.clone();
        missing_base.base.push(GroundAtom::named("A", &["ghost"]));
        assert!(
            MaintainedInstance::from_parts(&tgds, &missing_base, rebuilt())
                .unwrap_err()
                .contains("base fact")
        );

        let mut bad_rule = good.clone();
        bad_rule.firings[0].tgd = 7;
        assert!(MaintainedInstance::from_parts(&tgds, &bad_rule, rebuilt())
            .unwrap_err()
            .contains("rules were supplied"));

        let mut bad_key = good.clone();
        bad_key.firings[0].key.push(Value::named("extra"));
        assert!(MaintainedInstance::from_parts(&tgds, &bad_key, rebuilt())
            .unwrap_err()
            .contains("key"));

        let mut orphan = good.clone();
        orphan.firings.clear();
        assert!(MaintainedInstance::from_parts(&tgds, &orphan, rebuilt())
            .unwrap_err()
            .contains("neither base nor derived"));

        // Dropping the derived atom's product from the firing must also
        // fail (the product list no longer covers the instance).
        let mut no_product = good.clone();
        no_product.firings[0].products.clear();
        assert!(MaintainedInstance::from_parts(&tgds, &no_product, rebuilt()).is_err());
    }

    #[test]
    fn atom_budget_truncates_and_marks_incomplete() {
        let tgds = parse_tgds("P(X) -> Q(X,Y). Q(X,Y) -> P(Y)").unwrap();
        let d = db(&[("P", &["a"])]);
        let m = MaintainedInstance::new(&d, &tgds, ChaseBudget::atoms(20));
        assert!(!m.complete());
        assert!(m.instance().len() >= 20);
    }

    #[test]
    #[should_panic(expected = "level-capped")]
    fn level_budgets_are_rejected() {
        let tgds = parse_tgds("A(X) -> B(X)").unwrap();
        MaintainedInstance::new(&db(&[("A", &["a"])]), &tgds, ChaseBudget::levels(3));
    }
}
