//! `gtgd` — evaluate a query script open- or closed-world.
//!
//! ```text
//! gtgd script.gtgd            # evaluate a script file
//! gtgd -                      # read the script from stdin
//! gtgd --trace script.gtgd    # also print the probe report (JSON, stderr)
//! gtgd --certify script.gtgd  # print answer certificates (JSON, stdout)
//! gtgd --maintain script.gtgd # apply +atom / -atom ops incrementally
//! gtgd snapshot script.gtgd org.gsnap       # chase once, persist the fixpoint
//! gtgd serve org.gsnap [--addr HOST:PORT]   # serve a snapshot (default 127.0.0.1:7411)
//! ```
//!
//! `snapshot` chases an open-world script's base (applying any `+`/`-`
//! ops), then writes the maintained fixpoint — instance, indexes, fired
//! set — as one binary snapshot file. `serve` loads a snapshot and
//! answers line-delimited JSON requests over TCP with no chase, index
//! build, or plan compilation on the query hot path; writes run the
//! incremental chase and atomically rewrite the snapshot. See
//! `gtgd_storage` for the format and protocol.
//!
//! With `--maintain` (open-world only), the `fact` base is chased once
//! into a maintained materialization; each `+Atom(...)` line then runs a
//! delta chase and each `-Atom(...)` a DRed retraction, printing one
//! report line per op, before the query is answered over the final
//! instance.
//!
//! With `--certify`, stdout carries *only* the certificate JSON — the
//! human-readable answer summary moves to stderr — so the output pipes
//! straight into the independent checker:
//!
//! ```text
//! gtgd --certify script.gtgd | gtgd-check -
//! ```
//!
//! See `gtgd::script` for the script format.

use gtgd::chase::certificates_to_json;
use gtgd::chase::{ChaseBudget, ChaseRunner};
use gtgd::data::obs;
use gtgd::script::{certify_script, eval_script, parse_script, run_maintained, MaintOp, Mode};
use gtgd::storage::{save_snapshot, Server};
use std::io::Read;
use std::path::PathBuf;

/// Reads a script from a file or (with `-`) stdin.
fn read_source(arg: &str) -> String {
    if arg == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("read stdin");
        buf
    } else {
        std::fs::read_to_string(arg).unwrap_or_else(|e| {
            eprintln!("cannot read {arg}: {e}");
            std::process::exit(2);
        })
    }
}

/// `gtgd snapshot <script> <out>`: chase once (applying any maintenance
/// ops), persist the maintained fixpoint.
fn cmd_snapshot(args: &[String]) -> ! {
    let [script_arg, out] = args else {
        eprintln!("usage: gtgd snapshot <script-file | -> <out.gsnap>");
        std::process::exit(2);
    };
    let script = parse_script(&read_source(script_arg)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    if script.mode == Mode::Closed {
        eprintln!("error: snapshots are open-world only (closed mode has no chase to persist)");
        std::process::exit(1);
    }
    // Same budget discipline as `--maintain`: an atom cap, never levels.
    let mut m = ChaseRunner::new(&script.tgds)
        .budget(ChaseBudget::atoms(1_000_000))
        .maintain(&script.facts);
    for op in &script.ops {
        match op {
            MaintOp::Insert(a) => {
                m.insert([a.clone()]);
            }
            MaintOp::Retract(a) => {
                m.retract([a.clone()]);
            }
        }
    }
    match save_snapshot(out.as_ref(), &script.tgds, &m) {
        Ok(()) => {
            println!(
                "snapshot {out}: {} atom(s), {} rule(s), complete = {}",
                m.instance().len(),
                script.tgds.len(),
                m.complete()
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// `gtgd serve <snapshot> [--addr HOST:PORT]`: load once, serve forever.
fn cmd_serve(args: &[String]) -> ! {
    let mut addr = "127.0.0.1:7411".to_owned();
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--addr" {
            match it.next() {
                Some(v) => addr = v.clone(),
                None => {
                    eprintln!("--addr needs a HOST:PORT value");
                    std::process::exit(2);
                }
            }
        } else {
            files.push(a.clone());
        }
    }
    let [snap] = files.as_slice() else {
        eprintln!("usage: gtgd serve <snapshot.gsnap> [--addr HOST:PORT]");
        std::process::exit(2);
    };
    let server = Server::start(PathBuf::from(snap), &addr).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    println!("serving {snap} on {}", server.local_addr());
    match server.run() {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("snapshot") => cmd_snapshot(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        _ => {}
    }
    let mut trace = false;
    let mut certify = false;
    let mut maintain = false;
    let mut files: Vec<String> = Vec::new();
    for a in args {
        match a.as_str() {
            "--trace" => trace = true,
            "--certify" => certify = true,
            "--maintain" => maintain = true,
            _ => files.push(a),
        }
    }
    let [arg] = files.as_slice() else {
        eprintln!(
            "usage: gtgd [--trace] [--certify] [--maintain] <script-file | ->\n       gtgd snapshot <script-file | -> <out.gsnap>\n       gtgd serve <snapshot.gsnap> [--addr HOST:PORT]"
        );
        std::process::exit(2);
    };
    let src = read_source(arg);
    if maintain {
        let script = parse_script(&src).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        let run = || run_maintained(&script);
        let (result, report) = if trace {
            let (r, rep) = obs::trace_run(run);
            (r, Some(rep))
        } else {
            (run(), None)
        };
        match result {
            Ok(out) => {
                for step in &out.steps {
                    println!("{step}");
                }
                println!(
                    "maintained (open-world); {} answer(s); exact = {}",
                    out.answers.len(),
                    out.exact
                );
                for a in &out.answers {
                    println!("  ({a})");
                }
                if let Some(rep) = report {
                    eprintln!("{}", rep.to_json());
                }
                return;
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    let (result, report) = if trace {
        let (r, rep) = obs::trace_run(|| eval_script(&src));
        (r, Some(rep))
    } else {
        (eval_script(&src), None)
    };
    match result {
        Ok(out) => {
            let mode = match out.mode {
                Mode::Open => "open-world (OMQ)",
                Mode::Closed => "closed-world (CQS)",
            };
            let mut summary = format!(
                "{mode}; {} answer(s); exact = {}",
                out.answers.len(),
                out.exact
            );
            for a in &out.answers {
                summary.push_str(&format!("\n  ({a})"));
            }
            if certify {
                // Certificates own stdout; everything human goes to stderr.
                eprintln!("{summary}");
                let script = parse_script(&src).expect("script parsed once already");
                match certify_script(&script) {
                    Ok(certs) => {
                        eprintln!("{} certificate(s)", certs.len());
                        println!("{}", certificates_to_json(&certs));
                    }
                    Err(e) => {
                        eprintln!("certification error: {e}");
                        std::process::exit(1);
                    }
                }
            } else {
                println!("{summary}");
            }
            if let Some(rep) = report {
                // The report goes to stderr so piped answer output stays clean.
                eprintln!("{}", rep.to_json());
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
