//! The *restricted* (standard) chase: fires a trigger only when its head is
//! not already satisfied.
//!
//! The paper works with the oblivious chase (every chase sequence yields the
//! same result, levels are canonical). The restricted chase produces smaller
//! results — often finite where the oblivious chase is infinite — at the
//! cost of order dependence. Both compute universal models, so certain
//! answers agree wherever both terminate; the ablation experiment E9 and
//! several tests cross-check the two engines.
//!
//! Trigger discovery is *incremental*: a FIFO frontier of discovered
//! triggers is seeded from the database and extended, after each firing,
//! with only the triggers whose body uses a newly created atom (found by
//! pinning each body atom of each cached trigger plan (`plan::TriggerPlan`) to the delta).
//! Head satisfaction is checked when a trigger is *popped*, against the
//! instance as it stands then. This is sound because satisfaction is
//! monotone under instance growth — once a trigger's head is satisfied it
//! stays satisfied, so a popped-and-skipped trigger never needs to be
//! revisited, and a trigger never enters the frontier twice (a seen-set
//! dedups discovery). The historical implementation restarted a full
//! trigger scan over all TGDs and all body homomorphisms after *every*
//! firing, which is quadratic in the number of firings (the E9 ablation
//! measures the difference).

use crate::engine::ChaseBudget;
use crate::plan::TriggerPlan;
use crate::tgd::Tgd;
use gtgd_data::{obs, GroundAtom, Instance, Value};
use std::collections::{HashMap, HashSet, VecDeque};
use std::ops::ControlFlow;

/// Result of a restricted chase run.
#[derive(Debug, Clone)]
pub struct RestrictedChaseResult {
    /// The materialized instance.
    pub instance: Instance,
    /// Whether a fixpoint was reached within budget.
    pub complete: bool,
    /// Number of triggers fired.
    pub fired: usize,
}

/// Runs the restricted chase: repeatedly pop a discovered trigger from the
/// FIFO frontier, fire it if its head is not yet satisfied, and discover
/// the new triggers its output enables. Deterministic: the database seeds
/// the frontier in TGD-then-homomorphism order, and discovery after each
/// firing scans (TGD, pinned atom, delta atom) in a fixed order.
pub fn restricted_chase(
    db: &Instance,
    tgds: &[Tgd],
    budget: &ChaseBudget,
) -> RestrictedChaseResult {
    crate::runner::ChaseRunner::new(tgds)
        .variant(crate::runner::ChaseVariant::Restricted)
        .budget(*budget)
        .run(db)
        .into_restricted_result()
}

/// The engine behind [`restricted_chase`] and
/// [`crate::runner::ChaseRunner`].
pub(crate) fn restricted_chase_impl(
    db: &Instance,
    tgds: &[Tgd],
    budget: &ChaseBudget,
) -> RestrictedChaseResult {
    let _span = obs::span("chase.restricted");
    let plans = TriggerPlan::compile_all(tgds);
    let mut instance = db.clone();
    let mut fired = 0usize;
    let mut complete = true;

    // An already-exhausted budget stops before any trigger search, like the
    // historical scan loop (which checked budgets at the top of every
    // iteration, including the first).
    if budget.max_atoms.is_some_and(|max| instance.len() >= max)
        || budget.max_level.is_some_and(|max| max == 0)
    {
        return RestrictedChaseResult {
            instance,
            complete: false,
            fired: 0,
        };
    }

    // The frontier holds (TGD index, body row) triggers; `seen` guarantees
    // each trigger enters at most once.
    let mut queue: VecDeque<(usize, Vec<Value>)> = VecDeque::new();
    let mut seen: HashSet<(usize, Vec<Value>)> = HashSet::new();
    let push = |ti: usize,
                row: Vec<Value>,
                queue: &mut VecDeque<(usize, Vec<Value>)>,
                seen: &mut HashSet<(usize, Vec<Value>)>| {
        if seen.insert((ti, row.clone())) {
            queue.push_back((ti, row));
        }
    };

    // Seed: all triggers over the database (empty-body TGDs have exactly
    // one trigger, the empty row).
    for (ti, tgd) in tgds.iter().enumerate() {
        if tgd.body.is_empty() {
            push(ti, Vec::new(), &mut queue, &mut seen);
            continue;
        }
        plans[ti].body.search(&instance).for_each_row(|row| {
            push(ti, row.to_vec(), &mut queue, &mut seen);
            ControlFlow::Continue(())
        });
    }

    // Per-atom derivation levels, tracked only under a level budget:
    // database atoms are level 0; a firing's level is 1 + the maximum
    // level of its body atoms, and its products inherit that level (the
    // oblivious chase's level notion, applied per firing — not canonical
    // for the restricted chase, but a sound derivation-depth bound).
    let track_levels = budget.max_level.is_some();
    let mut levels: HashMap<GroundAtom, usize> = HashMap::new();
    if track_levels {
        levels.extend(instance.iter().map(|a| (a.clone(), 0)));
    }

    let mut new_atoms: Vec<GroundAtom> = Vec::new();
    while let Some((ti, row)) = queue.pop_front() {
        if let Some(max) = budget.max_atoms {
            if instance.len() >= max {
                complete = false;
                break;
            }
        }
        // Satisfaction is monotone, so checking at pop time (against the
        // grown instance) only ever *skips* triggers the historical
        // implementation would also have skipped. Checked before the level
        // budget so a too-deep trigger that would not have fired anyway
        // does not spuriously mark the run incomplete.
        if plans[ti].head_satisfied(&row, &instance) {
            continue;
        }
        let mut firing_level = 0usize;
        if let Some(max) = budget.max_level {
            firing_level = 1 + plans[ti]
                .ground_body(&row)
                .iter()
                .map(|a| levels.get(a).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            if firing_level > max {
                // This trigger is too deep, but shallower ones may still
                // be queued behind it: skip it instead of stopping the
                // whole frontier. A diverging chase drains because every
                // derivation chain eventually exceeds the cap.
                complete = false;
                continue;
            }
        }
        new_atoms.clear();
        plans[ti].fire_row(&row, &mut new_atoms);
        fired += 1;
        obs::count(obs::Metric::TriggerFirings, 1);
        // Insert, keeping only the genuinely new atoms as the delta.
        let mut delta_start = instance.len();
        instance.reserve_additional(new_atoms.len());
        for a in &new_atoms {
            if instance.insert(a.clone()) && track_levels {
                levels.insert(a.clone(), firing_level);
            }
        }
        // Discover triggers that use at least one delta atom.
        while delta_start < instance.len() {
            let d = instance.atom(delta_start).clone();
            delta_start += 1;
            for (tj, tgd) in tgds.iter().enumerate() {
                for pin in 0..tgd.body.len() {
                    let Some(seed) = plans[tj].body.unify_atom(pin, &d) else {
                        continue;
                    };
                    plans[tj]
                        .body
                        .search(&instance)
                        .fix_slots(seed)
                        .skip_atom(pin)
                        .for_each_row(|row| {
                            push(tj, row.to_vec(), &mut queue, &mut seen);
                            ControlFlow::Continue(())
                        });
                }
            }
        }
    }
    RestrictedChaseResult {
        instance,
        complete,
        fired,
    }
}

/// Whether the restricted chase result is a model (sanity hook for tests).
pub fn is_model(result: &RestrictedChaseResult, tgds: &[Tgd]) -> bool {
    result.complete && crate::tgd::satisfies_all(&result.instance, tgds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::chase;
    use crate::tgd::parse_tgds;
    use gtgd_data::GroundAtom;
    use gtgd_query::{evaluate_cq, parse_cq};

    fn db(atoms: &[(&str, &[&str])]) -> Instance {
        Instance::from_atoms(atoms.iter().map(|(p, args)| GroundAtom::named(p, args)))
    }

    #[test]
    fn restricted_skips_satisfied_triggers() {
        // D already satisfies the TGD: restricted fires nothing, oblivious
        // invents a null anyway.
        let tgds = parse_tgds("P(X) -> R(X,Y)").unwrap();
        let d = db(&[("P", &["a"]), ("R", &["a", "b"])]);
        let r = restricted_chase(&d, &tgds, &ChaseBudget::unbounded());
        assert!(r.complete);
        assert_eq!(r.fired, 0);
        assert_eq!(r.instance.len(), 2);
        let o = chase(&d, &tgds, &ChaseBudget::unbounded());
        assert_eq!(o.instance.len(), 3);
    }

    #[test]
    fn restricted_terminates_where_oblivious_does_not() {
        // Person(x) → ∃y Parent(x,y), Person(y): with a pre-existing
        // parent loop the restricted chase is finite.
        let tgds = parse_tgds("Person(X) -> Parent(X,Y), Person(Y)").unwrap();
        let d = db(&[("Person", &["eve"]), ("Parent", &["eve", "eve"])]);
        let r = restricted_chase(&d, &tgds, &ChaseBudget::atoms(100));
        assert!(r.complete, "the loop satisfies the TGD");
        assert!(is_model(&r, &tgds));
        let o = chase(&d, &tgds, &ChaseBudget::atoms(100));
        assert!(!o.complete, "the oblivious chase keeps inventing parents");
    }

    #[test]
    fn certain_answers_agree_when_both_terminate() {
        let tgds = parse_tgds("A(X) -> R(X,Y). R(X,Y) -> B(Y)").unwrap();
        let d = db(&[("A", &["a"]), ("A", &["b"])]);
        let r = restricted_chase(&d, &tgds, &ChaseBudget::unbounded());
        let o = chase(&d, &tgds, &ChaseBudget::unbounded());
        assert!(r.complete && o.complete);
        let q = parse_cq("Q(X) :- A(X), R(X,Y), B(Y)").unwrap();
        // Answers over dom(D) agree (both are universal models).
        let ans_r: std::collections::HashSet<_> = evaluate_cq(&q, &r.instance)
            .into_iter()
            .filter(|t| t.iter().all(|v| d.dom_contains(*v)))
            .collect();
        let ans_o: std::collections::HashSet<_> = evaluate_cq(&q, &o.instance)
            .into_iter()
            .filter(|t| t.iter().all(|v| d.dom_contains(*v)))
            .collect();
        assert_eq!(ans_r, ans_o);
        assert!(r.instance.len() <= o.instance.len());
    }

    #[test]
    fn budget_respected() {
        let tgds = parse_tgds("P(X) -> Q(X,Y). Q(X,Y) -> P(Y)").unwrap();
        let d = db(&[("P", &["a"])]);
        let r = restricted_chase(&d, &tgds, &ChaseBudget::atoms(30));
        assert!(!r.complete);
        assert!(r.instance.len() >= 30);
    }

    #[test]
    fn budget_already_exhausted_keeps_database() {
        // Mirrors the oblivious engine's edge: an exhausted budget stops
        // before any trigger is even considered.
        let tgds = parse_tgds("P(X) -> Q(X)").unwrap();
        let d = db(&[("P", &["a"]), ("P", &["b"]), ("P", &["c"])]);
        let r = restricted_chase(&d, &tgds, &ChaseBudget::atoms(3));
        assert!(!r.complete);
        assert_eq!(r.instance, d);
        assert_eq!(r.fired, 0);
        let r0 = restricted_chase(&d, &tgds, &ChaseBudget::levels(0));
        assert!(!r0.complete);
        assert_eq!(r0.instance, d);
    }

    #[test]
    fn atom_budget_exact_hit_stops_mid_frontier() {
        // Single-atom heads: firing stops the moment the cap is reached,
        // leaving the rest of the frontier unfired.
        let tgds = parse_tgds("P(X) -> Q(X)").unwrap();
        let names: Vec<String> = (0..10).map(|i| format!("c{i}")).collect();
        let d = Instance::from_atoms(names.iter().map(|n| GroundAtom::named("P", &[n.as_str()])));
        let r = restricted_chase(&d, &tgds, &ChaseBudget::atoms(13));
        assert!(!r.complete);
        assert_eq!(r.instance.len(), 13);
        assert_eq!(r.fired, 3);
    }

    #[test]
    fn atom_budget_at_fixpoint_boundary_is_complete() {
        // The fixpoint arrives before the cap: the run is complete.
        let tgds = parse_tgds("P(X) -> Q(X)").unwrap();
        let d = db(&[("P", &["a"])]);
        let r = restricted_chase(&d, &tgds, &ChaseBudget::atoms(3));
        assert!(r.complete);
        assert_eq!(r.instance.len(), 2);
        assert_eq!(r.fired, 1);
    }

    #[test]
    fn levels_only_budget_halts_a_diverging_chase() {
        // Person(x) → ∃y Parent(x,y), Person(y) with no loop diverges: the
        // old level-budget interpretation (triggers scaled by instance
        // size) never halted this, because the instance grows faster than
        // the fired count. The real stopping edge cuts each derivation
        // chain at depth `max`.
        let tgds = parse_tgds("Person(X) -> Parent(X,Y), Person(Y)").unwrap();
        let d = db(&[("Person", &["a"])]);
        let r = restricted_chase(&d, &tgds, &ChaseBudget::levels(3));
        assert!(!r.complete);
        // Levels 1..3 each add Parent + Person; the level-4 trigger is
        // skipped.
        assert_eq!(r.instance.len(), 1 + 2 * 3);
        assert_eq!(r.fired, 3);
    }

    #[test]
    fn level_budget_edges_around_fixpoint() {
        let tgds = parse_tgds("A(X) -> B(X). B(X) -> C(X).").unwrap();
        let d = db(&[("A", &["a"])]);
        // Below the chain depth: the level-2 trigger is skipped.
        let under = restricted_chase(&d, &tgds, &ChaseBudget::levels(1));
        assert!(!under.complete);
        assert_eq!(under.fired, 1);
        assert!(under.instance.contains(&GroundAtom::named("B", &["a"])));
        assert!(!under.instance.contains(&GroundAtom::named("C", &["a"])));
        // At the chain depth: every trigger fires and the drained frontier
        // certifies the fixpoint (the frontier engine knows no deeper
        // trigger exists, unlike the round-based oblivious engine).
        let at = restricted_chase(&d, &tgds, &ChaseBudget::levels(2));
        assert!(at.complete);
        assert_eq!(at.fired, 2);
        assert_eq!(at.instance.len(), 3);
    }

    #[test]
    fn level_budget_skips_deep_triggers_but_keeps_shallow_ones() {
        // Two independent chains of different depth share the frontier:
        // the cap must prune only the deep chain's tail, not stop the
        // whole run the moment one deep trigger is seen.
        let tgds = parse_tgds("A(X) -> B(X). B(X) -> C(X). C(X) -> D(X). P(X) -> Q(X).").unwrap();
        let d = db(&[("A", &["a"]), ("P", &["p"])]);
        let r = restricted_chase(&d, &tgds, &ChaseBudget::levels(2));
        assert!(!r.complete);
        assert!(r.instance.contains(&GroundAtom::named("C", &["a"])));
        assert!(!r.instance.contains(&GroundAtom::named("D", &["a"])));
        assert!(r.instance.contains(&GroundAtom::named("Q", &["p"])));
    }

    #[test]
    fn level_budget_ignores_satisfied_deep_triggers() {
        // The level-2 trigger's head is already satisfied: it would never
        // have fired, so skipping it must not cost completeness.
        let tgds = parse_tgds("A(X) -> B(X). B(X) -> C(X).").unwrap();
        let d = db(&[("A", &["a"]), ("C", &["a"])]);
        let r = restricted_chase(&d, &tgds, &ChaseBudget::levels(1));
        assert!(r.complete);
        assert_eq!(r.fired, 1);
    }

    #[test]
    fn both_budget_edges_compose() {
        // A diverging chase under both caps stops at whichever edge bites
        // first: a tight atom cap wins over a loose level cap and vice
        // versa.
        let tgds = parse_tgds("Person(X) -> Parent(X,Y), Person(Y)").unwrap();
        let d = db(&[("Person", &["a"])]);
        let atoms_first = restricted_chase(
            &d,
            &tgds,
            &ChaseBudget {
                max_level: Some(50),
                max_atoms: Some(5),
            },
        );
        assert!(!atoms_first.complete);
        assert!(atoms_first.instance.len() >= 5 && atoms_first.instance.len() <= 7);
        let levels_first = restricted_chase(
            &d,
            &tgds,
            &ChaseBudget {
                max_level: Some(2),
                max_atoms: Some(1_000),
            },
        );
        assert!(!levels_first.complete);
        assert_eq!(levels_first.instance.len(), 1 + 2 * 2);
    }

    #[test]
    fn full_tgds_fixpoint_matches_oblivious() {
        let tgds = parse_tgds("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
        let d = db(&[("E", &["a", "b"]), ("E", &["b", "c"]), ("E", &["c", "d"])]);
        let r = restricted_chase(&d, &tgds, &ChaseBudget::unbounded());
        let o = chase(&d, &tgds, &ChaseBudget::unbounded());
        assert_eq!(r.instance, o.instance);
    }
}
