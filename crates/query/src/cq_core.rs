//! CQ cores (Section 4): a ⊆-minimal equivalent subquery.
//!
//! The classic facts used throughout the paper: every CQ has a core, unique
//! up to isomorphism; `q ∈ CQ_k^≡` iff the core of `q` is in `CQ_k`
//! (Theorem 4.1's decidability footnote); and every homomorphism from a core
//! to itself that fixes the answer variables is injective.

use crate::cq::{Cq, Var};
use crate::hom::HomSearch;
use gtgd_data::Value;
use std::collections::{HashMap, HashSet};

/// Computes the core of `q`: a minimal retract equivalent to `q` (answer
/// variables fixed). The result is compacted.
pub fn core_of(q: &Cq) -> Cq {
    let mut current = q.compact();
    'outer: loop {
        let (db, frozen) = current.canonical_database();
        let fixed: Vec<(Var, Value)> = current
            .answer_vars
            .iter()
            .map(|&v| (v, frozen[&v]))
            .collect();
        let vars = current.all_vars();
        for &drop in &vars {
            if current.answer_vars.contains(&drop) {
                continue;
            }
            // Retract onto the subinstance that avoids drop's frozen value.
            let allowed: HashSet<Value> = vars
                .iter()
                .filter(|&&v| v != drop)
                .map(|v| frozen[v])
                .collect();
            let found = HomSearch::new(&current.atoms, &db)
                .fix(fixed.iter().copied())
                .restrict_images(allowed)
                .first();
            if let Some(h) = found {
                // Fold variables along the retraction: v ↦ the variable whose
                // frozen value is h(v).
                let var_of: HashMap<Value, Var> = vars.iter().map(|&v| (frozen[&v], v)).collect();
                current = current.map_vars(|v| var_of[&h[&v]]).compact();
                continue 'outer;
            }
        }
        return current;
    }
}

/// Whether `q` is a core: every endomorphism fixing the answer variables is
/// surjective (equivalently: the core computation is a no-op).
pub fn is_core(q: &Cq) -> bool {
    core_of(q).all_vars().len() == q.all_vars().len() && core_of(q).atom_count() == q.atom_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::cq_equivalent;
    use crate::parser::parse_cq;

    #[test]
    fn path_folds_onto_edge() {
        // E(X,Y), E(Y,Z) has core E(X,Y)? No!  A 2-path's core is itself
        // (no endomorphism into a single edge unless the edge is a loop).
        let q = parse_cq("Q() :- E(X,Y), E(Y,Z)").unwrap();
        let c = core_of(&q);
        assert_eq!(c.atom_count(), 2);
    }

    #[test]
    fn disjoint_copies_fold() {
        // Two disjoint edges fold onto one.
        let q = parse_cq("Q() :- E(X,Y), E(Z,W)").unwrap();
        let c = core_of(&q);
        assert_eq!(c.atom_count(), 1);
        assert!(cq_equivalent(&q, &c));
    }

    #[test]
    fn loop_absorbs_path() {
        // A loop absorbs everything connected to nothing else.
        let q = parse_cq("Q() :- E(X,X), E(Y,Z), E(Z,W)").unwrap();
        let c = core_of(&q);
        assert_eq!(c.atom_count(), 1);
        assert_eq!(c.all_vars().len(), 1);
    }

    #[test]
    fn triangle_is_core() {
        let q = parse_cq("Q() :- E(X,Y), E(Y,Z), E(Z,X)").unwrap();
        assert!(is_core(&q));
    }

    #[test]
    fn answer_vars_are_fixed() {
        // With X free, E(X,Y) cannot fold away even alongside E(Z,W):
        // Z,W fold onto X,Y but X stays.
        let q = parse_cq("Q(X) :- E(X,Y), E(Z,W)").unwrap();
        let c = core_of(&q);
        assert_eq!(c.arity(), 1);
        assert_eq!(c.atom_count(), 1);
        assert!(cq_equivalent(&q, &c));
    }

    #[test]
    fn free_variables_block_folding() {
        // Both edges have a free endpoint: nothing folds.
        let q = parse_cq("Q(X,Z) :- E(X,Y), E(Z,W)").unwrap();
        let c = core_of(&q);
        assert_eq!(c.atom_count(), 2);
    }

    #[test]
    fn example_4_4_query_is_core() {
        // The paper's q in Example 4.4 is stated to be a core from CQ_2.
        let q = parse_cq(
            "Q() :- P(X2,X1), P(X4,X1), P(X2,X3), P(X4,X3), R1(X1), R2(X2), R3(X3), R4(X4)",
        )
        .unwrap();
        assert!(is_core(&q));
        assert_eq!(crate::tw::cq_treewidth(&q), 2);
    }

    #[test]
    fn core_is_equivalent_and_idempotent() {
        let q = parse_cq("Q() :- E(X,Y), E(Y,Z), E(Z,W), E(A,B)").unwrap();
        let c = core_of(&q);
        assert!(cq_equivalent(&q, &c));
        let cc = core_of(&c);
        assert_eq!(cc.atom_count(), c.atom_count());
    }
}
