//! Fail-closed mutation testing of the certificate checker: take a *real*
//! certificate produced by the engine (chase → provenance → backward
//! pruning → JSON → `gtgd-check`'s parser), corrupt it one mutation at a
//! time, and require the checker to reject every mutant with the precise
//! error naming the offending step. A checker that accepts any of these
//! mutants would also accept a buggy engine — this suite is what makes
//! "the checker is an independent oracle" more than a slogan.
//!
//! Mutations are applied to the checker's own parsed model
//! (`gtgd_check::Certificate` has public plain fields for exactly this
//! purpose), plus a few wire-level tamperings of the JSON itself.

use gtgd::chase::{parse_tgds, CertificateStore, ChaseBudget, ChaseRunner};
use gtgd::data::{GroundAtom, Instance};
use gtgd::query::{parse_cq, Strategy};
use gtgd_check::{check, CVal, Certificate, CheckError};

/// A real engine-produced certificate for the chain ontology
/// `A(X) -> R(X,Y). R(X,Y) -> B(Y). B(X) -> C(X)` over `A(a)` and the
/// query `Q(X) :- R(X,Y), B(Y)`: answer `(a)`, witnessed by a two-firing
/// derivation (the `C` firing is pruned away as irrelevant).
fn certified() -> (String, Certificate) {
    let sigma = parse_tgds("A(X) -> R(X,Y). R(X,Y) -> B(Y). B(X) -> C(X)").unwrap();
    let d = Instance::from_atoms([GroundAtom::named("A", &["a"])]);
    let outcome = ChaseRunner::new(&sigma)
        .budget(ChaseBudget::levels(8))
        .certify(true)
        .run(&d);
    assert!(outcome.complete);
    let store = CertificateStore::new(&d, &sigma, outcome.firings.unwrap());
    let q = parse_cq("Q(X) :- R(X,Y), B(Y)").unwrap();
    let certs = store.certify_answers(&q, &outcome.instance, Strategy::Backtrack);
    assert_eq!(certs.len(), 1, "one null-free answer, (a)");
    let json = certs[0].to_json();
    let cert = Certificate::from_json(&json).expect("engine JSON parses");
    assert_eq!(
        check(&cert),
        Ok(()),
        "the unmutated certificate is accepted"
    );
    (json, cert)
}

/// The engine's firing chain for [`certified`], pruned: exactly the
/// `A(X) -> R(X,Y)` firing then the `R(X,Y) -> B(Y)` firing.
#[test]
fn baseline_shape_is_the_pruned_two_firing_chain() {
    let (_, cert) = certified();
    assert_eq!(cert.facts.len(), 1);
    assert_eq!(cert.tgds.len(), 3, "the full rule set is stated");
    assert_eq!(cert.firings.len(), 2, "the C firing is pruned");
    assert_eq!(cert.answer, vec![CVal::Named("a".into())]);
    // The invented null appears in the hom (it witnesses Y) but not in the
    // answer tuple.
    assert!(cert.hom.iter().any(|(_, v)| matches!(v, CVal::Null(_))));
}

/// Index of the existential binding (the fresh null) in firing 0's val.
fn null_binding(cert: &Certificate, firing: usize) -> usize {
    cert.firings[firing]
        .val
        .iter()
        .position(|(_, v)| matches!(v, CVal::Null(_)))
        .expect("firing invents a null")
}

#[test]
fn dropped_firing_is_rejected() {
    let (_, mut c) = certified();
    c.firings.remove(0);
    // Without the R-producing firing, the B firing's body is unjustified.
    assert!(matches!(
        check(&c),
        Err(CheckError::BodyAtomUnstated { firing: 0, .. })
    ));
}

#[test]
fn permuted_valuation_is_rejected() {
    let (_, mut c) = certified();
    // Swap the two bound values of firing 0: the body atom A(⊥) is not a
    // stated fact (and the permutation is caught before the stale-null
    // existential is even looked at).
    let i = null_binding(&c, 0);
    let j = 1 - i;
    let (vi, vj) = (c.firings[0].val[i].1.clone(), c.firings[0].val[j].1.clone());
    c.firings[0].val[i].1 = vj;
    c.firings[0].val[j].1 = vi;
    assert!(matches!(
        check(&c),
        Err(CheckError::BodyAtomUnstated { firing: 0, .. })
    ));
}

#[test]
fn renamed_null_at_invention_site_is_rejected() {
    let (_, mut c) = certified();
    // Rename the null where it is *invented* but not where it is *used*:
    // the downstream firing's body now references a value nobody derived.
    let i = null_binding(&c, 0);
    c.firings[0].val[i].1 = CVal::Null(0xDEAD);
    assert!(matches!(
        check(&c),
        Err(CheckError::BodyAtomUnstated { firing: 1, .. })
    ));
}

#[test]
fn reused_null_is_not_fresh() {
    let (_, mut c) = certified();
    // Replay the inventing firing verbatim: its "fresh" null has been seen
    // by then, so the copy must be rejected at the freshness gate.
    let copy = c.firings[0].clone();
    c.firings.insert(1, copy);
    assert!(matches!(
        check(&c),
        Err(CheckError::NonFreshNull { firing: 1, .. })
    ));
}

#[test]
fn constant_bound_existential_is_rejected() {
    let (_, mut c) = certified();
    // An existential bound to a *named constant* claims more than the rule
    // licenses (it asserts the witness is that specific individual).
    let i = null_binding(&c, 0);
    c.firings[0].val[i].1 = CVal::Named("a".into());
    assert!(matches!(
        check(&c),
        Err(CheckError::NonFreshNull { firing: 0, .. })
    ));
}

#[test]
fn body_binding_repointed_at_unstated_constant_is_rejected() {
    let (_, mut c) = certified();
    let i = null_binding(&c, 0);
    let j = 1 - i;
    c.firings[0].val[j].1 = CVal::Named("nobody".into());
    assert!(matches!(
        check(&c),
        Err(CheckError::BodyAtomUnstated { firing: 0, .. })
    ));
}

#[test]
fn swapped_answer_tuple_is_rejected() {
    let (_, mut c) = certified();
    c.answer = vec![CVal::Named("b".into())];
    assert_eq!(check(&c), Err(CheckError::AnswerMismatch));
}

#[test]
fn null_answer_is_rejected() {
    let (_, mut c) = certified();
    // Repoint the answer at the invented witness: a labelled null is not a
    // certain answer even though the hom genuinely binds it.
    let (var, null) = c
        .hom
        .iter()
        .find(|(_, v)| matches!(v, CVal::Null(_)))
        .map(|(var, v)| (*var, v.clone()))
        .expect("hom binds the invented null");
    c.answer_vars = vec![var];
    c.answer = vec![null];
    assert_eq!(check(&c), Err(CheckError::AnswerNotGround));
}

#[test]
fn unknown_tgd_index_is_rejected() {
    let (_, mut c) = certified();
    c.firings[0].tgd = 99;
    assert_eq!(
        check(&c),
        Err(CheckError::UnknownTgd { firing: 0, tgd: 99 })
    );
}

#[test]
fn extraneous_firing_binding_is_rejected() {
    let (_, mut c) = certified();
    c.firings[0].val.push((99, CVal::Named("a".into())));
    assert_eq!(
        check(&c),
        Err(CheckError::FiringExtraVar { firing: 0, var: 99 })
    );
}

#[test]
fn duplicate_firing_binding_is_rejected() {
    let (_, mut c) = certified();
    let dup = c.firings[0].val[0].clone();
    let var = dup.0;
    c.firings[0].val.push(dup);
    assert_eq!(
        check(&c),
        Err(CheckError::FiringDuplicateVar { firing: 0, var })
    );
}

#[test]
fn missing_firing_binding_is_rejected() {
    let (_, mut c) = certified();
    let var = c.firings[0].val[0].0;
    c.firings[0].val.remove(0);
    assert_eq!(
        check(&c),
        Err(CheckError::FiringUnboundVar { firing: 0, var })
    );
}

#[test]
fn extraneous_hom_binding_is_rejected() {
    let (_, mut c) = certified();
    c.hom.push((99, CVal::Named("a".into())));
    assert_eq!(check(&c), Err(CheckError::HomExtraVar { var: 99 }));
}

#[test]
fn duplicate_hom_binding_is_rejected() {
    let (_, mut c) = certified();
    let dup = c.hom[0].clone();
    let var = dup.0;
    c.hom.push(dup);
    assert_eq!(check(&c), Err(CheckError::HomDuplicateVar { var }));
}

#[test]
fn missing_hom_binding_is_rejected() {
    let (_, mut c) = certified();
    let var = c.hom[0].0;
    c.hom.remove(0);
    assert_eq!(check(&c), Err(CheckError::HomUnboundVar { var }));
}

#[test]
fn answer_variable_outside_query_is_rejected() {
    let (_, mut c) = certified();
    c.answer_vars = vec![99];
    assert_eq!(check(&c), Err(CheckError::AnswerVarNotInQuery { var: 99 }));
}

#[test]
fn query_atom_outside_derived_set_is_rejected() {
    let (_, mut c) = certified();
    // Rename a query atom's predicate: the hom still grounds it, but
    // nothing stated or derived justifies it.
    c.query[0].pred = "Zebra".into();
    assert!(matches!(
        check(&c),
        Err(CheckError::AnswerAtomUnstated { .. })
    ));
}

#[test]
fn arity_mismatched_answer_is_rejected() {
    let (_, mut c) = certified();
    c.answer.push(CVal::Named("a".into()));
    assert_eq!(check(&c), Err(CheckError::AnswerMismatch));
}

// --- wire-level tamperings of the engine's actual JSON ---

#[test]
fn tampered_version_is_rejected() {
    let (json, _) = certified();
    let bumped = json.replace("\"version\":1", "\"version\":2");
    assert_eq!(
        Certificate::from_json(&bumped),
        Err(CheckError::BadVersion(2))
    );
}

#[test]
fn smuggled_key_is_rejected() {
    let (json, _) = certified();
    let smuggled = json.replace("\"version\":1", "\"version\":1,\"trustme\":1");
    assert!(matches!(
        Certificate::from_json(&smuggled),
        Err(CheckError::Malformed(_))
    ));
}

#[test]
fn truncated_json_is_rejected() {
    let (json, _) = certified();
    let cut = &json[..json.len() - 2];
    assert!(matches!(
        Certificate::from_json(cut),
        Err(CheckError::Json(_))
    ));
}

#[test]
fn every_rejection_message_names_the_offense() {
    // The Display impls are part of the fail-closed contract: an auditor
    // must see *which* step failed, not just "rejected".
    let (_, mut c) = certified();
    c.firings[0].tgd = 7;
    let msg = check(&c).unwrap_err().to_string();
    assert!(msg.contains("firing 0") && msg.contains('7'), "{msg}");
}
