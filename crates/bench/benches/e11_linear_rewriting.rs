//! E11 — Prop D.2: UCQ rewriting for linear TGDs vs chase-based evaluation.

use gtgd_bench::harness;
use gtgd_bench::workloads::org_db;
use gtgd_chase::{linear_rewrite, parse_tgds};
use gtgd_core::{evaluate_omq, EvalConfig, Omq};
use gtgd_query::{evaluate_ucq, parse_ucq};

fn main() {
    harness::group("e11_linear_rewriting");
    let sigma =
        parse_tgds("Emp(X) -> WorksIn(X,D). WorksIn(X,D) -> Dept(D). Dept(D) -> Unit(D)").unwrap();
    let q = parse_ucq("Q(X) :- WorksIn(X,D), Unit(D)").unwrap();
    harness::case("rewrite_offline", || linear_rewrite(&q, &sigma));
    let rewritten = linear_rewrite(&q, &sigma);
    let omq = Omq::full_schema(sigma, q);
    let cfg = EvalConfig::default();
    for &n in &[100usize, 400] {
        let db = org_db(n);
        harness::case(&format!("eval_rewriting/{n}"), || {
            evaluate_ucq(&rewritten, &db)
        });
        harness::case(&format!("eval_via_chase/{n}"), || {
            evaluate_omq(&omq, &db, &cfg)
        });
    }
}
