//! The OMQ-side p-Clique reduction (Theorem 5.4 / Appendix D), scoped to
//! the ternary-encoding family of Example 6.3 / D.9.
//!
//! The pipeline mirrors Appendix D.2: start from a database `D₀` over the
//! data schema with `D₀ |= Q`, *diversify* it maximally (replacing tangle
//! constants by fresh isolated ones while `Q` still holds — the paper's
//! ⪯-minimal `D₁`), then apply the Grohe construction to `D₁` with `A` the
//! old non-isolated constants. Evaluating the OMQ on the result decides
//! k-clique. The general proof also attaches guarded unravelings (`D⁺`);
//! for this family the ontology is full and guarded, so entailments are
//! atom-local and no attachment is needed (`D⁺ = D`), which keeps the
//! construction exact.

use crate::diversify::diversify_maximally;
use crate::eval::{check_omq, EvalConfig};
use crate::grohe::{build_grohe_database, identity_grid_mu, GroheDatabase};
use crate::omq::Omq;
use gtgd_chase::parse_tgds;
use gtgd_data::{GroundAtom, Instance, Schema, Value};
use gtgd_query::parse_cq;
use gtgd_treewidth::grid::big_k;
use gtgd_treewidth::Graph;
use std::collections::BTreeSet;

/// The Example 6.3 OMQ family: data schema `{Xp/3, Yp/3}`, ontology
/// projecting the ternary encodings to binary grid edges, and the
/// `k × K` grid as the actual query.
pub fn ternary_grid_omq_family(k: usize) -> Omq {
    let (rows, cols) = (k, big_k(k).max(1));
    let sigma = parse_tgds("Xp(X,Y,Z) -> X2(X,Y). Yp(X,Y,Z) -> Y2(X,Y)").unwrap();
    let mut atoms = Vec::new();
    for i in 1..=rows {
        for j in 1..=cols {
            if j < cols {
                atoms.push(format!("X2(G{i}_{j}, G{i}_{})", j + 1));
            }
            if i < rows {
                atoms.push(format!("Y2(G{i}_{j}, G{}_{j})", i + 1));
            }
        }
    }
    let q = parse_cq(&format!("Q() :- {}", atoms.join(", "))).unwrap();
    Omq::new(
        Schema::from_pairs([("Xp", 3), ("Yp", 3)]),
        sigma,
        gtgd_query::Ucq::single(q),
    )
    .expect("schema-consistent family")
}

/// The tangled start database `D₀` of Example D.9 for the `rows × cols`
/// grid: every third position is the same constant `b`.
pub fn tangled_grid_db(rows: usize, cols: usize) -> Instance {
    let name = |i: usize, j: usize| format!("a{i}_{j}");
    let mut atoms = Vec::new();
    for i in 1..=rows {
        for j in 1..=cols {
            if j < cols {
                atoms.push(GroundAtom::named(
                    "Xp",
                    &[&name(i, j), &name(i, j + 1), "b"],
                ));
            }
            if i < rows {
                atoms.push(GroundAtom::named(
                    "Yp",
                    &[&name(i, j), &name(i + 1, j), "b"],
                ));
            }
        }
    }
    Instance::from_atoms(atoms)
}

/// The reduced OMQ instance and its pieces.
#[derive(Debug, Clone)]
pub struct OmqReducedInstance {
    /// The diversified `D₁`.
    pub d1: Instance,
    /// The Grohe database over `D₁`.
    pub grohe: GroheDatabase,
}

/// Runs the Theorem 5.4-style reduction for the ternary grid family:
/// `(G, k) ↦ D*_G` such that `G` has a `k`-clique iff `D*_G |= Q`.
pub fn clique_to_omq_instance(
    g: &Graph,
    k: usize,
    q: &Omq,
    cfg: &EvalConfig,
) -> OmqReducedInstance {
    let (rows, cols) = (k, big_k(k).max(1));
    let d0 = tangled_grid_db(rows, cols);
    // The grid constants must survive diversification untouched (they are
    // the A-part); everything else may untangle.
    let protect: Vec<Value> = d0
        .dom()
        .iter()
        .copied()
        .filter(|v| v.is_named() && !matches!(*v, v2 if v2 == Value::named("b")))
        .collect();
    let d1 = diversify_maximally(&d0, &protect, |cand| {
        let (holds, exact) = check_omq(q, cand, &[], cfg);
        holds && exact
    })
    .instance;
    // A: the grid constants, grid-major.
    let mut a_values = Vec::new();
    for i in 1..=rows {
        for j in 1..=cols {
            a_values.push(Value::named(&format!("a{i}_{j}")));
        }
    }
    let a: BTreeSet<Value> = a_values.iter().copied().collect();
    let mu = identity_grid_mu(&a_values);
    let grohe = build_grohe_database(g, k, &d1, &a, &mu);
    OmqReducedInstance { d1, grohe }
}

/// Decides `k`-clique through OMQ evaluation on the reduced database.
pub fn decide_clique_via_omq(g: &Graph, k: usize, cfg: &EvalConfig) -> bool {
    let q = ternary_grid_omq_family(k);
    let reduced = clique_to_omq_instance(g, k, &q, cfg);
    let (holds, exact) = check_omq(&q, &reduced.grohe.instance, &[], cfg);
    assert!(exact, "full guarded ontology evaluates exactly");
    holds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grohe::has_clique;

    fn graph_zoo() -> Vec<Graph> {
        let mut graphs = Vec::new();
        let mut g = Graph::new(4);
        g.make_clique(&[0, 1, 2]);
        g.add_edge(2, 3);
        graphs.push(g);
        let mut g = Graph::new(5);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5);
        }
        graphs.push(g); // C5: no triangle
        let mut g = Graph::new(4);
        g.make_clique(&[0, 1, 2, 3]);
        graphs.push(g); // K4
        graphs
    }

    #[test]
    fn family_is_well_formed() {
        let q = ternary_grid_omq_family(3);
        assert!(!q.has_full_data_schema(), "X2/Y2 are ontology-only");
        assert!(q.sigma_in(gtgd_chase::TgdClass::Guarded));
        assert_eq!(q.arity(), 0);
    }

    #[test]
    fn diversification_untangles_the_encoding() {
        let cfg = EvalConfig::default();
        let q = ternary_grid_omq_family(2);
        let g = graph_zoo().remove(2); // K4
        let reduced = clique_to_omq_instance(&g, 2, &q, &cfg);
        // In D1 the tangle constant b occurs at most once.
        let b = Value::named("b");
        assert!(
            reduced.d1.iter().filter(|a| a.mentions(b)).count() <= 1,
            "b was untangled"
        );
    }

    #[test]
    fn omq_reduction_correct_k2() {
        let cfg = EvalConfig::default();
        for (i, g) in graph_zoo().into_iter().enumerate() {
            assert_eq!(
                decide_clique_via_omq(&g, 2, &cfg),
                has_clique(&g, 2),
                "graph {i}"
            );
        }
        assert!(!decide_clique_via_omq(&Graph::new(3), 2, &cfg));
    }

    #[test]
    fn omq_reduction_correct_k3() {
        let cfg = EvalConfig::default();
        for (i, g) in graph_zoo().into_iter().enumerate() {
            assert_eq!(
                decide_clique_via_omq(&g, 3, &cfg),
                has_clique(&g, 3),
                "graph {i}"
            );
        }
    }
}
