//! E2 — chase growth across TGD classes: linear chains, full transitive
//! closure, and guarded ground saturation (`chase↓`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtgd_bench::workloads::{chain_ontology, org_db, org_ontology, path_db, tc_ontology};
use gtgd_chase::{chase, ground_saturation, ChaseBudget};
use gtgd_data::{GroundAtom, Instance};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_chase");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let chain = chain_ontology(8);
    let tc = tc_ontology();
    let org = org_ontology();
    for &n in &[50usize, 150, 400] {
        let unary: Instance = (0..n)
            .map(|i| GroundAtom::named("A0", &[&format!("x{i}")]))
            .collect();
        group.bench_with_input(BenchmarkId::new("linear_chain", n), &unary, |b, db| {
            b.iter(|| chase(db, &chain, &ChaseBudget::unbounded()))
        });
        let pdb = path_db(n.min(120));
        group.bench_with_input(BenchmarkId::new("full_tc", n), &pdb, |b, db| {
            b.iter(|| chase(db, &tc, &ChaseBudget::unbounded()))
        });
        let odb = org_db(n);
        group.bench_with_input(BenchmarkId::new("guarded_saturation", n), &odb, |b, db| {
            b.iter(|| ground_saturation(db, &org))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
