//! Simple undirected graphs over vertex ids `0..n`.

use std::collections::{BTreeSet, VecDeque};

/// An undirected simple graph (no self loops, no parallel edges) with
/// vertices `0..n`.
///
/// Adjacency is stored as sorted sets so iteration order is deterministic,
/// which keeps every downstream algorithm (and therefore every test and
/// benchmark) reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<BTreeSet<usize>>,
}

impl Graph {
    /// Creates a graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![BTreeSet::new(); n],
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|s| s.len()).sum::<usize>() / 2
    }

    /// Adds an undirected edge. Self loops are ignored (Gaifman graphs have
    /// none). Returns `true` if the edge was new.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(u < self.adj.len() && v < self.adj.len(), "vertex oob");
        if u == v {
            return false;
        }
        let new = self.adj[u].insert(v);
        self.adj[v].insert(u);
        new
    }

    /// Removes an edge if present; returns whether it existed.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        let had = self.adj[u].remove(&v);
        self.adj[v].remove(&u);
        had
    }

    /// Whether `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u != v && self.adj.get(u).is_some_and(|s| s.contains(&v))
    }

    /// Neighbors of `v` in ascending order.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[v].iter().copied()
    }

    /// Neighbor set of `v`.
    pub fn neighbor_set(&self, v: usize) -> &BTreeSet<usize> {
        &self.adj[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// All edges `(u, v)` with `u < v`, in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, s)| {
            s.iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Adds a fresh isolated vertex and returns its id.
    pub fn add_vertex(&mut self) -> usize {
        self.adj.push(BTreeSet::new());
        self.adj.len() - 1
    }

    /// Whether the set `s` induces a clique (every pair adjacent).
    pub fn is_clique(&self, s: &[usize]) -> bool {
        for (i, &u) in s.iter().enumerate() {
            for &v in &s[i + 1..] {
                if u != v && !self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// Turns `s` into a clique by adding all missing edges.
    pub fn make_clique(&mut self, s: &[usize]) {
        for (i, &u) in s.iter().enumerate() {
            for &v in &s[i + 1..] {
                self.add_edge(u, v);
            }
        }
    }

    /// The subgraph induced by `keep`, together with the mapping from new
    /// vertex ids to the original ids (`result.1[new] == old`).
    pub fn induced_subgraph(&self, keep: &[usize]) -> (Graph, Vec<usize>) {
        let mut old_of_new = keep.to_vec();
        old_of_new.sort_unstable();
        old_of_new.dedup();
        let mut new_of_old = vec![usize::MAX; self.vertex_count()];
        for (new, &old) in old_of_new.iter().enumerate() {
            new_of_old[old] = new;
        }
        let mut g = Graph::new(old_of_new.len());
        for &old in &old_of_new {
            for v in self.neighbors(old) {
                if new_of_old[v] != usize::MAX {
                    g.add_edge(new_of_old[old], new_of_old[v]);
                }
            }
        }
        (g, old_of_new)
    }

    /// Connected components as sorted vertex lists, ordered by smallest
    /// member.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.vertex_count();
        let mut seen = vec![false; n];
        let mut comps = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut queue = VecDeque::from([start]);
            seen[start] = true;
            while let Some(u) = queue.pop_front() {
                comp.push(u);
                for v in self.neighbors(u) {
                    if !seen[v] {
                        seen[v] = true;
                        queue.push_back(v);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }

    /// Whether the graph is connected (vacuously true for 0 or 1 vertices).
    pub fn is_connected(&self) -> bool {
        self.components().len() <= 1
    }

    /// Whether the graph is a forest (acyclic).
    pub fn is_forest(&self) -> bool {
        // A graph is a forest iff every component has |E| = |V| - 1.
        let n = self.vertex_count();
        if n == 0 {
            return true;
        }
        self.edge_count() + self.components().len() == n
    }

    /// Contracts the edge `{u, v}` into `u`: `v`'s neighbors become `u`'s and
    /// `v` becomes isolated. Used by the minor-map search.
    pub fn contract_edge(&mut self, u: usize, v: usize) {
        assert!(self.has_edge(u, v), "contracting a non-edge");
        let nbrs: Vec<usize> = self.adj[v].iter().copied().collect();
        for w in nbrs {
            self.remove_edge(v, w);
            if w != u {
                self.add_edge(u, w);
            }
        }
    }

    /// Disjoint union: appends `other`'s vertices after `self`'s, returning
    /// the offset at which `other`'s vertex ids now start.
    pub fn disjoint_union(&mut self, other: &Graph) -> usize {
        let offset = self.vertex_count();
        for s in &other.adj {
            self.adj.push(s.iter().map(|&v| v + offset).collect());
        }
        offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i);
        }
        g
    }

    #[test]
    fn basic_edges() {
        let mut g = Graph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0), "edge already present");
        assert!(!g.add_edge(1, 1), "self loop ignored");
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn edges_iterator_is_sorted_and_unique() {
        let mut g = Graph::new(4);
        g.add_edge(2, 0);
        g.add_edge(3, 1);
        g.add_edge(0, 1);
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 3)]);
    }

    #[test]
    fn components_and_connectivity() {
        let mut g = path(3);
        g.add_vertex();
        let comps = g.components();
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3]]);
        assert!(!g.is_connected());
        assert!(path(5).is_connected());
        assert!(Graph::new(0).is_connected());
    }

    #[test]
    fn forest_detection() {
        assert!(path(6).is_forest());
        let mut g = path(3);
        g.add_edge(0, 2); // triangle
        assert!(!g.is_forest());
        assert!(Graph::new(4).is_forest());
    }

    #[test]
    fn induced_subgraph_remaps() {
        let mut g = path(5);
        g.add_edge(0, 4);
        let (h, map) = g.induced_subgraph(&[0, 1, 4]);
        assert_eq!(map, vec![0, 1, 4]);
        assert_eq!(h.vertex_count(), 3);
        assert!(h.has_edge(0, 1)); // 0-1
        assert!(h.has_edge(0, 2)); // 0-4
        assert!(!h.has_edge(1, 2)); // 1-4 not an edge
    }

    #[test]
    fn clique_ops() {
        let mut g = Graph::new(4);
        g.make_clique(&[0, 1, 3]);
        assert!(g.is_clique(&[0, 1, 3]));
        assert!(!g.is_clique(&[0, 1, 2]));
        assert_eq!(g.edge_count(), 3);
        // Singletons and empty sets are cliques.
        assert!(g.is_clique(&[2]));
        assert!(g.is_clique(&[]));
    }

    #[test]
    fn contraction_merges_neighborhoods() {
        let mut g = path(4); // 0-1-2-3
        g.contract_edge(1, 2);
        assert!(g.has_edge(1, 3));
        assert_eq!(g.degree(2), 0);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn disjoint_union_offsets() {
        let mut g = path(2);
        let off = g.disjoint_union(&path(3));
        assert_eq!(off, 2);
        assert_eq!(g.vertex_count(), 5);
        assert!(g.has_edge(2, 3) && g.has_edge(3, 4) && !g.has_edge(1, 2));
    }
}
