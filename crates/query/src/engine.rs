//! The query evaluation facade: one documented entry point in front of the
//! compiled kernel.
//!
//! Three perf iterations left this crate with overlapping entry points —
//! [`crate::eval::evaluate_cq`] / [`crate::eval::evaluate_cq_par`], the
//! [`crate::hom::HomSearch`] wrapper, and the raw
//! [`crate::compile::KernelSearch`] builder. [`Engine::prepare`] is the one
//! route new code should take: it compiles the query once into a
//! [`PreparedQuery`], lets the caller configure execution (join
//! [`Strategy`], pool width, injectivity, an image restriction, tracing),
//! and evaluates against any number of instances. The legacy free functions
//! survive as thin delegating wrappers, so their behaviour — and every test
//! pinned to it — is unchanged.
//!
//! ```
//! use gtgd_data::{GroundAtom, Instance};
//! use gtgd_query::{parse_cq, Engine};
//!
//! let db = Instance::from_atoms([
//!     GroundAtom::named("E", &["a", "b"]),
//!     GroundAtom::named("E", &["b", "c"]),
//! ]);
//! let q = parse_cq("Q(X,Z) :- E(X,Y), E(Y,Z)").unwrap();
//! let answers = Engine::prepare(&q).answers(&db);
//! assert_eq!(answers.len(), 1);
//! ```

use crate::compile::{CompiledQuery, KernelSearch, Repr, Strategy};
use crate::cq::{Cq, Var};
use gtgd_data::{obs, Instance, Value};
use std::collections::HashSet;
use std::ops::ControlFlow;

/// One distinct answer tuple paired with a witnessing homomorphism: every
/// query variable (in the compiled plan's slot order) mapped to its image
/// under the witness that produced the tuple. Produced by
/// [`PreparedQuery::answer_witnesses`].
pub type AnswerWitness = (Vec<Value>, Vec<(Var, Value)>);

/// The facade over query compilation and execution. Stateless: it exists
/// so call sites read `Engine::prepare(&q)` instead of picking one of the
/// historical entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct Engine;

impl Engine {
    /// Compiles `q` (answer variables interned, answer slots resolved) into
    /// a reusable [`PreparedQuery`] with default execution settings: the
    /// planner-chosen strategy, one worker, no injectivity, no image
    /// restriction, no tracing.
    pub fn prepare(q: &Cq) -> PreparedQuery {
        let plan = CompiledQuery::compile_with_extra(&q.atoms, q.answer_vars.iter().copied());
        let slots = q
            .answer_vars
            .iter()
            .map(|&v| plan.slot_of(v).expect("answer vars are interned"))
            .collect();
        PreparedQuery {
            plan,
            slots,
            arity: q.arity(),
            boolean: q.is_boolean(),
            strategy: None,
            repr: Repr::Auto,
            workers: 1,
            injective: false,
            allowed: None,
            trace: false,
        }
    }
}

/// A compiled query plus its execution configuration. Built by
/// [`Engine::prepare`], evaluated by [`PreparedQuery::answers`] (or the
/// decision-form helpers); reusable across instances.
///
/// Preparation depends only on the query — evaluation borrows the
/// instance per call and captures nothing from it — so a prepared query
/// stays valid across arbitrary instance evolution, including the
/// insert/retract cycles of a maintained materialization
/// (`gtgd_chase::MaintainedInstance`): prepare once, re-evaluate after
/// every maintenance op.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    plan: CompiledQuery,
    slots: Vec<usize>,
    arity: usize,
    boolean: bool,
    strategy: Option<Strategy>,
    repr: Repr,
    workers: usize,
    injective: bool,
    allowed: Option<HashSet<Value>>,
    trace: bool,
}

/// Answers plus the probe report of a traced evaluation.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The answer set, identical to [`PreparedQuery::answers`].
    pub answers: HashSet<Vec<Value>>,
    /// The run's probe report; `None` unless built with `.trace(true)`.
    pub report: Option<obs::RunReport>,
}

impl PreparedQuery {
    /// Overrides the join strategy (default: the compile-time planner
    /// gate picks backtracking or the worst-case-optimal executor).
    pub fn strategy(mut self, s: Strategy) -> Self {
        self.strategy = Some(s);
        self
    }

    /// Overrides the worst-case-optimal executor's key representation
    /// (default [`Repr::Auto`] = dense dictionary codes). The answer set
    /// is representation-independent; the generic path exists as the
    /// always-available fallback and differential oracle.
    pub fn repr(mut self, r: Repr) -> Self {
        self.repr = r;
        self
    }

    /// Evaluates on a `width`-wide worker pool (1 = sequential, the
    /// default). The answer *set* is width-independent.
    pub fn parallel(mut self, width: usize) -> Self {
        self.workers = width.max(1);
        self
    }

    /// Restricts to injective homomorphisms (distinct variables must map
    /// to distinct values).
    pub fn injective(mut self) -> Self {
        self.injective = true;
        self
    }

    /// Restricts variable images to `allowed` (e.g. `dom(D)` for
    /// closed-world certain-answer filtering).
    pub fn restrict_images(mut self, allowed: impl IntoIterator<Item = Value>) -> Self {
        self.allowed = Some(allowed.into_iter().collect());
        self
    }

    /// Enables probe collection for this query's runs: [`run`] returns a
    /// populated [`obs::RunReport`] covering kernel node visits, WCOJ
    /// seeks, index builds, and pool utilization.
    ///
    /// [`run`]: PreparedQuery::run
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// The query's answer arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    fn kernel<'a>(&'a self, i: &'a Instance) -> KernelSearch<'a> {
        let mut k = self.plan.search(i).repr(self.repr);
        if let Some(s) = self.strategy {
            k = k.strategy(s);
        }
        if self.injective {
            k = k.injective();
        }
        if let Some(allowed) = &self.allowed {
            k = k.restrict_images(allowed);
        }
        k
    }

    fn answers_now(&self, i: &Instance) -> HashSet<Vec<Value>> {
        if self.workers > 1 {
            return self
                .kernel(i)
                .par_table(self.workers)
                .rows()
                .map(|row| self.slots.iter().map(|&s| row[s]).collect())
                .collect();
        }
        let mut out = HashSet::new();
        self.kernel(i).for_each_row(|row| {
            out.insert(self.slots.iter().map(|&s| row[s]).collect());
            ControlFlow::Continue(())
        });
        out
    }

    /// `q(I)`: the set of answers over `i`, under this configuration.
    /// Matches [`crate::eval::evaluate_cq`] (width 1) and
    /// [`crate::eval::evaluate_cq_par`] (width > 1) exactly.
    pub fn answers(&self, i: &Instance) -> HashSet<Vec<Value>> {
        self.answers_now(i)
    }

    /// Evaluates with probe collection if `.trace(true)` was set: the
    /// outcome carries the run's [`obs::RunReport`]. Without tracing this
    /// is [`PreparedQuery::answers`] with `report: None`.
    pub fn run(&self, i: &Instance) -> QueryOutcome {
        if self.trace {
            let (answers, report) = obs::trace_run(|| self.answers_now(i));
            QueryOutcome {
                answers,
                report: Some(report),
            }
        } else {
            QueryOutcome {
                answers: self.answers_now(i),
                report: None,
            }
        }
    }

    /// The distinct answers over `i`, each paired with one witnessing
    /// homomorphism: every query variable (in the plan's slot order)
    /// mapped to its image under the witness that first produced the
    /// tuple. Both join strategies emit the same shape — the kernel
    /// yields full slot rows and [`CompiledQuery::vars`] names the slots
    /// — so certificates built from either are interchangeable. The
    /// answer *set* equals [`PreparedQuery::answers`]; which witness
    /// backs a tuple is unspecified (any is equally valid evidence).
    pub fn answer_witnesses(&self, i: &Instance) -> Vec<AnswerWitness> {
        let vars = self.plan.vars();
        let mut seen: HashSet<Vec<Value>> = HashSet::new();
        let mut out: Vec<AnswerWitness> = Vec::new();
        let mut push = |row: &[Value]| {
            let answer: Vec<Value> = self.slots.iter().map(|&s| row[s]).collect();
            if seen.insert(answer.clone()) {
                let hom = vars.iter().copied().zip(row.iter().copied()).collect();
                out.push((answer, hom));
            }
        };
        if self.workers > 1 {
            for row in self.kernel(i).par_table(self.workers).rows() {
                push(row);
            }
        } else {
            self.kernel(i).for_each_row(|row| {
                push(row);
                ControlFlow::Continue(())
            });
        }
        out
    }

    /// Whether `answer ∈ q(I)` (the decision form; pins the answer slots
    /// and asks for one witness instead of enumerating).
    pub fn check(&self, i: &Instance, answer: &[Value]) -> bool {
        assert_eq!(answer.len(), self.arity, "candidate answer has wrong arity");
        self.kernel(i)
            .fix_slots(self.slots.iter().copied().zip(answer.iter().copied()))
            .exists()
    }

    /// Whether the (Boolean) query holds: `I |= q`.
    pub fn holds(&self, i: &Instance) -> bool {
        assert!(self.boolean, "holds requires a Boolean query");
        self.kernel(i).exists()
    }

    /// The number of homomorphisms (witnesses, not projected answers).
    pub fn count(&self, i: &Instance) -> usize {
        self.kernel(i).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate_cq, evaluate_cq_par};
    use crate::parser::parse_cq;
    use gtgd_data::GroundAtom;

    fn v(s: &str) -> Value {
        Value::named(s)
    }

    fn cycle_db(n: usize) -> Instance {
        let names: Vec<String> = (0..n).map(|i| format!("c{i}")).collect();
        Instance::from_atoms(
            (0..n)
                .map(|i| GroundAtom::named("E", &[names[i].as_str(), names[(i + 1) % n].as_str()])),
        )
    }

    #[test]
    fn facade_matches_legacy_sequential_and_parallel() {
        let q = parse_cq("Q(X,Z) :- E(X,Y), E(Y,Z)").unwrap();
        let db = cycle_db(5);
        let prepared = Engine::prepare(&q);
        assert_eq!(prepared.answers(&db), evaluate_cq(&q, &db));
        for w in [2, 4] {
            assert_eq!(
                Engine::prepare(&q).parallel(w).answers(&db),
                evaluate_cq_par(&q, &db, w)
            );
        }
    }

    #[test]
    fn strategy_override_preserves_answers() {
        let q = parse_cq("Q(X,Y,Z) :- E(X,Y), E(Y,Z), E(Z,X)").unwrap();
        let db = cycle_db(3);
        let base = Engine::prepare(&q).answers(&db);
        for s in [Strategy::Backtrack, Strategy::Wcoj] {
            assert_eq!(Engine::prepare(&q).strategy(s).answers(&db), base, "{s:?}");
        }
    }

    #[test]
    fn check_and_holds() {
        let q = parse_cq("Q(X,Z) :- E(X,Y), E(Y,Z)").unwrap();
        let db = cycle_db(4);
        let p = Engine::prepare(&q);
        assert!(p.check(&db, &[v("c0"), v("c2")]));
        assert!(!p.check(&db, &[v("c0"), v("c1")]));
        let b = parse_cq("Q() :- E(X,X)").unwrap();
        assert!(!Engine::prepare(&b).holds(&db));
    }

    #[test]
    fn injective_and_restricted_images() {
        let q = parse_cq("Q(X) :- E(X,Y), E(Y,Z)").unwrap();
        let mut db = cycle_db(3);
        db.insert(GroundAtom::named("E", &["c0", "c0"]));
        // Non-injective witness E(c0,c0),E(c0,c0) is excluded.
        let inj = Engine::prepare(&q).injective().answers(&db);
        assert!(inj.contains(&vec![v("c0")]));
        let none = Engine::prepare(&q).restrict_images([v("c0")]).answers(&db);
        assert_eq!(none, HashSet::from([vec![v("c0")]]));
    }

    #[test]
    fn answer_witnesses_cover_answers_with_valid_homs() {
        let q = parse_cq("Q(X,Z) :- E(X,Y), E(Y,Z)").unwrap();
        let db = cycle_db(5);
        for s in [Strategy::Backtrack, Strategy::Wcoj] {
            for w in [1, 3] {
                let p = Engine::prepare(&q).strategy(s).parallel(w);
                let witnesses = p.answer_witnesses(&db);
                let tuples: HashSet<Vec<Value>> =
                    witnesses.iter().map(|(a, _)| a.clone()).collect();
                assert_eq!(tuples, p.answers(&db), "{s:?} w={w}");
                assert_eq!(witnesses.len(), tuples.len(), "one witness per tuple");
                for (answer, hom) in &witnesses {
                    // The hom binds every query variable, and substituting
                    // it into each query atom lands on a database fact.
                    for atom in &q.atoms {
                        let ground = GroundAtom::new(
                            atom.predicate,
                            atom.args
                                .iter()
                                .map(|t| match *t {
                                    crate::cq::Term::Const(c) => c,
                                    crate::cq::Term::Var(v) => {
                                        hom.iter().find(|(u, _)| *u == v).expect("bound").1
                                    }
                                })
                                .collect(),
                        );
                        assert!(db.contains(&ground), "{s:?} w={w}");
                    }
                    // And it projects to the answer tuple.
                    for (i, &av) in q.answer_vars.iter().enumerate() {
                        let img = hom.iter().find(|(u, _)| *u == av).expect("bound").1;
                        assert_eq!(img, answer[i]);
                    }
                }
            }
        }
    }

    #[test]
    fn traced_run_reports_kernel_work() {
        let q = parse_cq("Q(X,Z) :- E(X,Y), E(Y,Z)").unwrap();
        let db = cycle_db(4);
        let out = Engine::prepare(&q).trace(true).run(&db);
        let report = out.report.expect("trace was requested");
        assert!(report.counter(obs::Metric::KernelNodes) > 0);
        assert_eq!(out.answers, evaluate_cq(&q, &db));
        // Untraced runs carry no report.
        assert!(Engine::prepare(&q).run(&db).report.is_none());
    }
}
