//! Semantic treewidth of plain (U)CQs — Grohe's Theorem 4.1 machinery
//! (Section 4): a CQ is in `CQ_k^≡` iff its core is in `CQ_k`, and the
//! natural UCQ generalization.

use crate::containment::{cq_contained, ucq_equivalent};
use crate::cq::{Cq, Ucq};
use crate::cq_core::core_of;
use crate::tw::{cq_treewidth, is_cq_treewidth_at_most};

/// The semantic treewidth of a CQ: the treewidth of its core — the least
/// `k` with `q ∈ CQ_k^≡` (Dalmau–Kolaitis–Vardi \[20\], as used in
/// Theorem 4.1).
pub fn cq_semantic_treewidth(q: &Cq) -> usize {
    cq_treewidth(&core_of(q))
}

/// Whether `q ∈ CQ_k^≡`: equivalent to a CQ of treewidth at most `k`.
pub fn is_cq_semantically_at_most(q: &Cq, k: usize) -> bool {
    is_cq_treewidth_at_most(&core_of(q), k)
}

/// Whether a UCQ is equivalent to one from `UCQ_k`, and the witnessing
/// rewriting if so.
///
/// The natural generalization of Theorem 4.1 to UCQs: take each disjunct's
/// core; keep those of treewidth ≤ `k`; the UCQ is UCQ_k-equivalent iff
/// every discarded disjunct is subsumed by a kept one. (A discarded
/// disjunct `p` can only be covered by a disjunct `p′` with `p ⊆ p′`,
/// since a UCQ answer from `p`'s canonical database must come from some
/// single disjunct.)
pub fn ucq_semantic_rewriting(q: &Ucq, k: usize) -> Option<Ucq> {
    let cores: Vec<Cq> = q.disjuncts.iter().map(core_of).collect();
    let kept: Vec<Cq> = cores
        .iter()
        .filter(|c| is_cq_treewidth_at_most(c, k))
        .cloned()
        .collect();
    if kept.is_empty() {
        return None;
    }
    for c in &cores {
        if !kept.iter().any(|good| cq_contained(c, good)) {
            return None;
        }
    }
    let rewriting = Ucq::new(kept);
    debug_assert!(ucq_equivalent(q, &rewriting));
    Some(rewriting)
}

/// Whether `q ∈ UCQ_k^≡`.
pub fn is_ucq_semantically_at_most(q: &Ucq, k: usize) -> bool {
    ucq_semantic_rewriting(q, k).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_cq, parse_ucq};

    #[test]
    fn padding_does_not_change_semantic_treewidth() {
        // Triangle + pendant path: syntactic tw 2 either way, but the core
        // analysis sees through padding.
        let q = parse_cq("Q() :- E(X,Y), E(Y,Z), E(Z,X), E(X,A), E(A,B)").unwrap();
        assert_eq!(cq_semantic_treewidth(&q), 2);
        assert!(is_cq_semantically_at_most(&q, 2));
        assert!(!is_cq_semantically_at_most(&q, 1));
    }

    #[test]
    fn redundant_grid_folds_to_path() {
        // Two disjoint paths fold onto one: semantically treewidth 1.
        let q = parse_cq("Q() :- E(X,Y), E(Y,Z), E(A,B), E(B,C)").unwrap();
        assert_eq!(cq_semantic_treewidth(&q), 1);
    }

    #[test]
    fn ucq_rewriting_drops_subsumed_cyclic_disjunct() {
        // triangle ∨ edge: the triangle is contained in the edge disjunct,
        // so the UCQ is semantically treewidth 1.
        let q = parse_ucq("Q() :- E(X,Y), E(Y,Z), E(Z,X). Q() :- E(X,Y)").unwrap();
        let r = ucq_semantic_rewriting(&q, 1).expect("edge covers triangle");
        assert_eq!(r.disjuncts.len(), 1);
        assert!(ucq_equivalent(&q, &r));
    }

    #[test]
    fn ucq_with_essential_cyclic_disjunct_is_not_rewritable() {
        // triangle ∨ P(x): the triangle is not subsumed.
        let q = parse_ucq("Q() :- E(X,Y), E(Y,Z), E(Z,X). Q() :- P(X)").unwrap();
        assert!(!is_ucq_semantically_at_most(&q, 1));
        assert!(is_ucq_semantically_at_most(&q, 2));
    }

    #[test]
    fn answer_variables_respected() {
        // With both endpoints free, nothing folds; the triangle's
        // existential part is a single vertex, so the paper's convention
        // gives treewidth 1.
        let q = parse_cq("Q(X,Y) :- E(X,Y), E(Y,Z), E(Z,X)").unwrap();
        assert_eq!(cq_semantic_treewidth(&q), 1);
    }
}
