#![warn(missing_docs)]

//! The paper's contribution: ontology-mediated queries (OMQs) and
//! constraint-query specifications (CQSs) over (frontier-)guarded TGDs,
//! their open- and closed-world evaluation, semantic treewidth
//! (UCQ_k-equivalence and UCQ_k-approximations), and the lower-bound
//! machinery (the Grohe construction and the p-Clique fpt-reductions).
//!
//! Section map:
//! * [`omq`], [`cqs`] — the two facets of TGDs in querying (Section 3);
//! * [`eval`] — evaluation, including the FPT algorithm of Prop 3.3(3);
//! * [`containment`] — chase-based containment/equivalence (Prop 4.5);
//! * [`approx`] — UCQ_k-approximations and UCQ_k-equivalence (Section 4,
//!   Prop 5.2/5.11, Theorems 5.1/5.6/5.10);
//! * [`grohe`] — the database `D*(G, D, D′, A, µ)` of Theorem 7.1/App. H.1;
//! * [`omq_to_cqs`] — the OMQ→CQS fpt-reduction of Prop 5.8/Lemma 6.8;
//! * [`reduction`] — end-to-end p-Clique reductions (Theorems 5.4/5.13);
//! * [`diversify`] — diversification of databases (Appendix D.2).
//!
//! ```
//! use gtgd_core::{evaluate_omq, EvalConfig, Omq};
//! use gtgd_chase::parse_tgds;
//! use gtgd_query::parse_ucq;
//! use gtgd_data::{GroundAtom, Instance};
//!
//! // Open-world: the ontology supplies every employee a managed department.
//! let omq = Omq::full_schema(
//!     parse_tgds("Emp(X) -> WorksIn(X,D). WorksIn(X,D) -> Dept(D). \
//!                 Dept(D) -> HasMgr(D,M)")?,
//!     parse_ucq("Q(X) :- WorksIn(X,D), HasMgr(D,M)")?,
//! );
//! let db = Instance::from_atoms([GroundAtom::named("Emp", &["ann"])]);
//! let out = evaluate_omq(&omq, &db, &EvalConfig::default());
//! assert!(out.exact);
//! assert_eq!(out.answers.len(), 1);
//! # Ok::<(), gtgd_query::ParseError>(())
//! ```

pub mod approx;
pub mod containment;
pub mod cqs;
pub mod diversify;
pub mod eval;
pub mod grohe;
pub mod omq;
pub mod omq_reduction;
pub mod omq_to_cqs;
pub mod planner;
pub mod reduction;

pub use approx::{
    cqs_ucqk_approximation, cqs_uniformly_ucqk_equivalent, fgm_regime_bound,
    omq_ucqk_approximation, omq_ucqk_approximation_compact, omq_ucqk_equivalent,
    omq_uniformly_ucqk_equivalent, GroundingPolicy,
};
pub use containment::{
    cqs_contained, cqs_equivalent, minimize_ucq_under, omq_contained_same_sigma,
    ucq_contained_under, Containment,
};
pub use cqs::{Cqs, CqsViolation};
pub use diversify::{diversifications_of_atom, diversify_maximally, Diversification};
pub use eval::{check_omq, check_omq_fpt, evaluate_omq, EvalConfig, OmqAnswers};
pub use grohe::{build_grohe_database, labelled_cliques, pad_for_clique_extension, GroheDatabase};
pub use omq::Omq;
pub use omq_reduction::{clique_to_omq_instance, decide_clique_via_omq, ternary_grid_omq_family};
pub use omq_to_cqs::omq_to_cqs_database;
pub use planner::{plan_cqs, Engine, Plan, PlannedDisjunct};
pub use reduction::{
    clique_to_cqs_instance, grid_cqs_family, marked_grid_cqs_family, CqsCliqueFamily,
};
