//! Finite models witnessing chase answers (Definition 6.5's `M(D, Σ, n)`).
//!
//! The paper realizes finite witnesses through the finite model property of
//! GNFO, with models of size `2^2^poly` — far beyond practical
//! materialization. We substitute (documented in DESIGN.md §3): when the
//! chase of `(D, Σ)` terminates — guaranteed for full or weakly acyclic
//! sets, and detected dynamically otherwise — the chase result itself is a
//! finite **universal** model, which witnesses `q(chase(D,Σ)) = q(M)` for
//! *every* UCQ `q`, strictly stronger than the `n`-variable-bounded witness
//! the paper needs. When the chase does not terminate within budget we
//! report failure rather than return something unsound.

use crate::acyclicity::is_weakly_acyclic;
use crate::engine::{chase, ChaseBudget};
use crate::tgd::Tgd;
use gtgd_data::Instance;

/// Why a finite witness could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessError {
    /// The chase did not reach a fixpoint within the given budget. For
    /// non-weakly-acyclic guarded sets this is expected: materializing the
    /// paper's GNFO-based witness is out of scope (see DESIGN.md §3).
    ChaseDidNotTerminate {
        /// Atoms materialized when the budget ran out.
        atoms: usize,
        /// Whether the TGD set was recognized as weakly acyclic.
        weakly_acyclic: bool,
    },
}

impl std::fmt::Display for WitnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WitnessError::ChaseDidNotTerminate {
                atoms,
                weakly_acyclic,
            } => write!(
                f,
                "chase did not terminate within budget ({atoms} atoms materialized, \
                 weakly acyclic: {weakly_acyclic})"
            ),
        }
    }
}

impl std::error::Error for WitnessError {}

/// Produces a finite model `M ∈ fmods(D, Σ)` with
/// `q(chase(D, Σ)) = q(M)` for every UCQ `q` — the realization of the
/// paper's `M(D, Σ, n)` on the chase-terminating fragment (the witness here
/// is universal, so it does not depend on the variable bound `n`).
///
/// `budget` caps the chase; pass [`ChaseBudget::unbounded`] only for sets
/// known to terminate.
pub fn finite_witness(
    db: &Instance,
    tgds: &[Tgd],
    budget: &ChaseBudget,
) -> Result<Instance, WitnessError> {
    let result = chase(db, tgds, budget);
    if result.complete {
        Ok(result.instance)
    } else {
        Err(WitnessError::ChaseDidNotTerminate {
            atoms: result.instance.len(),
            weakly_acyclic: is_weakly_acyclic(tgds),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tgd::{parse_tgds, satisfies_all};
    use gtgd_data::GroundAtom;
    use gtgd_query::{evaluate_cq, parse_cq};

    fn db(atoms: &[(&str, &[&str])]) -> Instance {
        Instance::from_atoms(atoms.iter().map(|(p, args)| GroundAtom::named(p, args)))
    }

    #[test]
    fn weakly_acyclic_witness_is_a_model() {
        let tgds = parse_tgds("A(X) -> R(X,Y). R(X,Y) -> B(Y)").unwrap();
        let d = db(&[("A", &["a"])]);
        let m = finite_witness(&d, &tgds, &ChaseBudget::unbounded()).unwrap();
        assert!(satisfies_all(&m, &tgds));
        // Universality: query answers match chase answers.
        let q = parse_cq("Q(X) :- A(X), R(X,Y), B(Y)").unwrap();
        assert_eq!(evaluate_cq(&q, &m).len(), 1);
    }

    #[test]
    fn non_terminating_reports_error() {
        let tgds = parse_tgds("Person(X) -> Parent(X,Y), Person(Y)").unwrap();
        let d = db(&[("Person", &["eve"])]);
        let err = finite_witness(&d, &tgds, &ChaseBudget::atoms(100)).unwrap_err();
        match err {
            WitnessError::ChaseDidNotTerminate {
                atoms,
                weakly_acyclic,
            } => {
                assert!(atoms >= 100);
                assert!(!weakly_acyclic);
            }
        }
    }

    #[test]
    fn full_tgds_always_witnessed() {
        let tgds = parse_tgds("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
        let d = db(&[("E", &["a", "b"]), ("E", &["b", "c"])]);
        let m = finite_witness(&d, &tgds, &ChaseBudget::unbounded()).unwrap();
        assert!(m.contains(&GroundAtom::named("E", &["a", "c"])));
        assert!(satisfies_all(&m, &tgds));
    }
}
